//! Artifact-plane field layouts for the ASR configuration records and the
//! whole-pipeline [`TrainedAsr`] checkpoint.
//!
//! Weight-bearing types ([`crate::am::AcousticModel`],
//! [`crate::lm::BigramLm`]) implement [`Persist`] next to their fields;
//! this module covers the *configuration* records — which nest inside the
//! pipeline artifact rather than standing alone, so they get plain
//! encode/decode helpers instead of `Persist` — and composes everything
//! into the [`TrainedAsr`] artifact. The decoder's vocabulary and the
//! front end's filterbanks are deterministic functions of their configs
//! (built-in lexicon, closed-form mel geometry), so only configs are
//! stored and the heavy structures are rebuilt on load.

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder as FieldDecoder, Encoder, Persist};
use mvp_dsp::mfcc::MfccConfig;
use mvp_dsp::Window;
use mvp_phonetics::Lexicon;

use crate::am::AcousticModel;
use crate::decoder::{Decoder, DecoderConfig};
use crate::features::{FeatureFrontEnd, FrontEndConfig};
use crate::lm::BigramLm;
use crate::recognizer::{Asr, TrainedAsr};

fn window_tag(w: Window) -> u8 {
    match w {
        Window::Hann => 0,
        Window::Hamming => 1,
        Window::Rectangular => 2,
    }
}

fn window_from_tag(tag: u8) -> Result<Window, ArtifactError> {
    match tag {
        0 => Ok(Window::Hann),
        1 => Ok(Window::Hamming),
        2 => Ok(Window::Rectangular),
        other => Err(ArtifactError::SchemaMismatch(format!("window tag {other}"))),
    }
}

/// Appends an [`MfccConfig`] record.
pub fn encode_mfcc_config(enc: &mut Encoder, cfg: &MfccConfig) {
    enc.put_u32(cfg.sample_rate);
    enc.put_usize(cfg.frame_len);
    enc.put_usize(cfg.hop);
    enc.put_usize(cfg.n_fft);
    enc.put_usize(cfg.n_mels);
    enc.put_usize(cfg.n_cepstra);
    enc.put_u8(window_tag(cfg.window));
    enc.put_f64(cfg.f_min);
    enc.put_f64(cfg.f_max);
    enc.put_f64(cfg.pre_emphasis);
    enc.put_f64(cfg.log_floor);
}

/// Reads an [`MfccConfig`] record written by [`encode_mfcc_config`].
pub fn decode_mfcc_config(dec: &mut FieldDecoder<'_>) -> Result<MfccConfig, ArtifactError> {
    Ok(MfccConfig {
        sample_rate: dec.u32()?,
        frame_len: dec.usize()?,
        hop: dec.usize()?,
        n_fft: dec.usize()?,
        n_mels: dec.usize()?,
        n_cepstra: dec.usize()?,
        window: window_from_tag(dec.u8()?)?,
        f_min: dec.f64()?,
        f_max: dec.f64()?,
        pre_emphasis: dec.f64()?,
        log_floor: dec.f64()?,
    })
}

impl FrontEndConfig {
    /// Appends this record to an artifact payload.
    pub fn encode(&self, enc: &mut Encoder) {
        encode_mfcc_config(enc, &self.mfcc);
        enc.put_usize(self.context);
        enc.put_usize(self.subsample);
    }

    /// Reads a record written by [`FrontEndConfig::encode`].
    pub fn decode(dec: &mut FieldDecoder<'_>) -> Result<FrontEndConfig, ArtifactError> {
        let mfcc = decode_mfcc_config(dec)?;
        let context = dec.usize()?;
        let subsample = dec.usize()?;
        if subsample == 0 {
            return Err(ArtifactError::SchemaMismatch("zero subsample factor".into()));
        }
        Ok(FrontEndConfig { mfcc, context, subsample })
    }
}

impl DecoderConfig {
    /// Appends this record to an artifact payload.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.min_run);
        enc.put_usize(self.top_k);
        enc.put_f64(self.edit_weight);
        enc.put_f64(self.lm_weight);
    }

    /// Reads a record written by [`DecoderConfig::encode`].
    pub fn decode(dec: &mut FieldDecoder<'_>) -> Result<DecoderConfig, ArtifactError> {
        Ok(DecoderConfig {
            min_run: dec.usize()?,
            top_k: dec.usize()?,
            edit_weight: dec.f64()?,
            lm_weight: dec.f64()?,
        })
    }
}

impl Persist for TrainedAsr {
    const KIND: ArtifactKind = ArtifactKind::TRAINED_ASR;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.name());
        self.frontend().config().encode(enc);
        self.acoustic_model().encode(enc);
        self.decoder().lm().encode(enc);
        self.decoder().config().encode(enc);
    }

    fn decode(dec: &mut FieldDecoder<'_>) -> Result<Self, ArtifactError> {
        let name = dec.str()?;
        let frontend_cfg = FrontEndConfig::decode(dec)?;
        let am = AcousticModel::decode(dec)?;
        let lm = BigramLm::decode(dec)?;
        let decoder_cfg = DecoderConfig::decode(dec)?;
        let frontend = FeatureFrontEnd::new(frontend_cfg);
        if am.dim() != frontend.dim() {
            return Err(ArtifactError::SchemaMismatch(format!(
                "acoustic model expects dim {} but the front end produces {}",
                am.dim(),
                frontend.dim()
            )));
        }
        let decoder = Decoder::new(&Lexicon::builtin(), lm, decoder_cfg);
        Ok(TrainedAsr::new(name, frontend, am, decoder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mfcc_config_round_trips() {
        let cfg = MfccConfig { window: Window::Hamming, n_mels: 17, ..MfccConfig::default() };
        let mut enc = Encoder::new();
        encode_mfcc_config(&mut enc, &cfg);
        let mut dec = FieldDecoder::new(enc.as_bytes());
        assert_eq!(decode_mfcc_config(&mut dec).unwrap(), cfg);
        dec.finish().unwrap();
    }

    #[test]
    fn frontend_config_rejects_zero_subsample() {
        let mut enc = Encoder::new();
        FrontEndConfig { subsample: 3, ..FrontEndConfig::default() }.encode(&mut enc);
        let mut bytes = enc.as_bytes().to_vec();
        // The subsample factor is the final u64 of the record.
        let at = bytes.len() - 8;
        bytes[at..].copy_from_slice(&0u64.to_le_bytes());
        let mut dec = FieldDecoder::new(&bytes);
        assert!(matches!(FrontEndConfig::decode(&mut dec), Err(ArtifactError::SchemaMismatch(_))));
    }

    #[test]
    fn decoder_config_round_trips() {
        let cfg = DecoderConfig { min_run: 1, top_k: 9, edit_weight: 2.5, lm_weight: 0.75 };
        let mut enc = Encoder::new();
        cfg.encode(&mut enc);
        let mut dec = FieldDecoder::new(enc.as_bytes());
        assert_eq!(DecoderConfig::decode(&mut dec).unwrap(), cfg);
        dec.finish().unwrap();
    }
}
