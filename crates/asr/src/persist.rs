//! Artifact-plane field layouts for the ASR configuration records and the
//! whole-pipeline [`TrainedAsr`] checkpoint.
//!
//! Weight-bearing types ([`crate::am::AcousticModel`],
//! [`crate::lm::BigramLm`]) implement [`Persist`] next to their fields;
//! this module covers the *configuration* records — which nest inside the
//! pipeline artifact rather than standing alone, so they get plain
//! encode/decode helpers instead of `Persist` — and composes everything
//! into the [`TrainedAsr`] artifact. The decoder's vocabulary and the
//! front end's filterbanks are deterministic functions of their configs
//! (built-in lexicon, closed-form mel geometry), so only configs are
//! stored and the heavy structures are rebuilt on load.

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder as FieldDecoder, Encoder, Persist};
use mvp_dsp::mfcc::MfccConfig;
use mvp_dsp::Window;
use mvp_phonetics::Lexicon;

use crate::am::{AcousticModel, QuantizedAcousticModel};
use crate::decoder::{Decoder, DecoderConfig};
use crate::features::{FeatureFrontEnd, FrontEndConfig};
use crate::lm::BigramLm;
use crate::recognizer::{Asr, TrainedAsr};

fn window_tag(w: Window) -> u8 {
    match w {
        Window::Hann => 0,
        Window::Hamming => 1,
        Window::Rectangular => 2,
    }
}

fn window_from_tag(tag: u8) -> Result<Window, ArtifactError> {
    match tag {
        0 => Ok(Window::Hann),
        1 => Ok(Window::Hamming),
        2 => Ok(Window::Rectangular),
        other => Err(ArtifactError::SchemaMismatch(format!("window tag {other}"))),
    }
}

/// Appends an [`MfccConfig`] record.
pub fn encode_mfcc_config(enc: &mut Encoder, cfg: &MfccConfig) {
    enc.put_u32(cfg.sample_rate);
    enc.put_usize(cfg.frame_len);
    enc.put_usize(cfg.hop);
    enc.put_usize(cfg.n_fft);
    enc.put_usize(cfg.n_mels);
    enc.put_usize(cfg.n_cepstra);
    enc.put_u8(window_tag(cfg.window));
    enc.put_f64(cfg.f_min);
    enc.put_f64(cfg.f_max);
    enc.put_f64(cfg.pre_emphasis);
    enc.put_f64(cfg.log_floor);
}

/// Reads an [`MfccConfig`] record written by [`encode_mfcc_config`].
pub fn decode_mfcc_config(dec: &mut FieldDecoder<'_>) -> Result<MfccConfig, ArtifactError> {
    Ok(MfccConfig {
        sample_rate: dec.u32()?,
        frame_len: dec.usize()?,
        hop: dec.usize()?,
        n_fft: dec.usize()?,
        n_mels: dec.usize()?,
        n_cepstra: dec.usize()?,
        window: window_from_tag(dec.u8()?)?,
        f_min: dec.f64()?,
        f_max: dec.f64()?,
        pre_emphasis: dec.f64()?,
        log_floor: dec.f64()?,
    })
}

impl FrontEndConfig {
    /// Appends this record to an artifact payload.
    pub fn encode(&self, enc: &mut Encoder) {
        encode_mfcc_config(enc, &self.mfcc);
        enc.put_usize(self.context);
        enc.put_usize(self.subsample);
    }

    /// Reads a record written by [`FrontEndConfig::encode`].
    pub fn decode(dec: &mut FieldDecoder<'_>) -> Result<FrontEndConfig, ArtifactError> {
        let mfcc = decode_mfcc_config(dec)?;
        let context = dec.usize()?;
        let subsample = dec.usize()?;
        if subsample == 0 {
            return Err(ArtifactError::SchemaMismatch("zero subsample factor".into()));
        }
        Ok(FrontEndConfig { mfcc, context, subsample })
    }
}

impl DecoderConfig {
    /// Appends this record to an artifact payload.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.min_run);
        enc.put_usize(self.top_k);
        enc.put_f64(self.edit_weight);
        enc.put_f64(self.lm_weight);
    }

    /// Reads a record written by [`DecoderConfig::encode`].
    pub fn decode(dec: &mut FieldDecoder<'_>) -> Result<DecoderConfig, ArtifactError> {
        Ok(DecoderConfig {
            min_run: dec.usize()?,
            top_k: dec.usize()?,
            edit_weight: dec.f64()?,
            lm_weight: dec.f64()?,
        })
    }
}

impl Persist for TrainedAsr {
    const KIND: ArtifactKind = ArtifactKind::TRAINED_ASR;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.name());
        self.frontend().config().encode(enc);
        self.acoustic_model().encode(enc);
        self.decoder().lm().encode(enc);
        self.decoder().config().encode(enc);
    }

    fn decode(dec: &mut FieldDecoder<'_>) -> Result<Self, ArtifactError> {
        let name = dec.str()?;
        let frontend_cfg = FrontEndConfig::decode(dec)?;
        let am = AcousticModel::decode(dec)?;
        let lm = BigramLm::decode(dec)?;
        let decoder_cfg = DecoderConfig::decode(dec)?;
        let frontend = FeatureFrontEnd::new(frontend_cfg);
        if am.dim() != frontend.dim() {
            return Err(ArtifactError::SchemaMismatch(format!(
                "acoustic model expects dim {} but the front end produces {}",
                am.dim(),
                frontend.dim()
            )));
        }
        let decoder = Decoder::new(&Lexicon::builtin(), lm, decoder_cfg);
        Ok(TrainedAsr::new(name, frontend, am, decoder))
    }
}

/// A persistable int8 pipeline: a [`TrainedAsr`] that is guaranteed to
/// carry a precision variant.
///
/// Kept as its *own* artifact kind rather than a `TrainedAsr` schema
/// bump: existing f64 model artifacts on disk stay valid, and a
/// quantized checkpoint can never be confused for a full-precision one
/// at load time.
#[derive(Debug, Clone)]
pub struct QuantizedAsr(TrainedAsr);

impl QuantizedAsr {
    /// Wraps a quantized pipeline for persistence.
    ///
    /// # Panics
    ///
    /// Panics if `asr` carries no precision variant — persisting a plain
    /// f64 pipeline under the quantized kind would lie to every loader.
    pub fn new(asr: TrainedAsr) -> QuantizedAsr {
        assert!(asr.quantized_model().is_some(), "pipeline has no quantized acoustic model");
        QuantizedAsr(asr)
    }

    /// The wrapped pipeline.
    pub fn as_asr(&self) -> &TrainedAsr {
        &self.0
    }

    /// Unwraps into the pipeline.
    pub fn into_asr(self) -> TrainedAsr {
        self.0
    }
}

impl Persist for QuantizedAsr {
    const KIND: ArtifactKind = ArtifactKind::QUANTIZED_ASR;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.0.quantized_model().expect("checked at construction").encode(enc);
    }

    fn decode(dec: &mut FieldDecoder<'_>) -> Result<Self, ArtifactError> {
        let base = TrainedAsr::decode(dec)?;
        let qam = QuantizedAcousticModel::decode(dec)?;
        if qam.dim() != base.frontend().dim() || qam.hidden() != base.acoustic_model().hidden() {
            return Err(ArtifactError::SchemaMismatch(format!(
                "quantized model {}x{} does not match pipeline {}x{}",
                qam.dim(),
                qam.hidden(),
                base.frontend().dim(),
                base.acoustic_model().hidden()
            )));
        }
        Ok(QuantizedAsr(base.with_quantized(qam)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mfcc_config_round_trips() {
        let cfg = MfccConfig { window: Window::Hamming, n_mels: 17, ..MfccConfig::default() };
        let mut enc = Encoder::new();
        encode_mfcc_config(&mut enc, &cfg);
        let mut dec = FieldDecoder::new(enc.as_bytes());
        assert_eq!(decode_mfcc_config(&mut dec).unwrap(), cfg);
        dec.finish().unwrap();
    }

    #[test]
    fn frontend_config_rejects_zero_subsample() {
        let mut enc = Encoder::new();
        FrontEndConfig { subsample: 3, ..FrontEndConfig::default() }.encode(&mut enc);
        let mut bytes = enc.as_bytes().to_vec();
        // The subsample factor is the final u64 of the record.
        let at = bytes.len() - 8;
        bytes[at..].copy_from_slice(&0u64.to_le_bytes());
        let mut dec = FieldDecoder::new(&bytes);
        assert!(matches!(FrontEndConfig::decode(&mut dec), Err(ArtifactError::SchemaMismatch(_))));
    }

    #[test]
    fn decoder_config_round_trips() {
        let cfg = DecoderConfig { min_run: 1, top_k: 9, edit_weight: 2.5, lm_weight: 0.75 };
        let mut enc = Encoder::new();
        cfg.encode(&mut enc);
        let mut dec = FieldDecoder::new(enc.as_bytes());
        assert_eq!(DecoderConfig::decode(&mut dec).unwrap(), cfg);
        dec.finish().unwrap();
    }

    fn quantized_kaldi() -> QuantizedAsr {
        use mvp_audio::synth::{SpeakerProfile, Synthesizer};

        let asr = crate::profile::AsrProfile::Kaldi.trained();
        let synth = Synthesizer::new(16_000);
        let lex = Lexicon::builtin();
        let waves: Vec<_> = ["open the door", "good morning"]
            .iter()
            .map(|t| synth.synthesize(&lex, t, &SpeakerProfile::default()).0)
            .collect();
        let refs: Vec<_> = waves.iter().collect();
        QuantizedAsr::new(asr.quantize(&refs))
    }

    #[test]
    fn quantized_pipeline_round_trips_with_identical_transcripts() {
        use mvp_audio::synth::{SpeakerProfile, Synthesizer};

        let quantized = quantized_kaldi();
        assert_eq!(quantized.as_asr().name(), "KALDI-I8");
        assert_eq!(quantized.as_asr().precision(), "int8");
        let mut bytes = Vec::new();
        quantized.write_to(&mut bytes).unwrap();
        let back = QuantizedAsr::read_from(&bytes[..]).unwrap();
        assert_eq!(back.as_asr().name(), "KALDI-I8");
        let synth = Synthesizer::new(16_000);
        let (wave, _) = synth.synthesize(
            &Lexicon::builtin(),
            "the man walked the street",
            &SpeakerProfile::default(),
        );
        // Bit-exact weights + bit-exact integer kernels ⇒ the reloaded
        // pipeline transcribes identically, not just similarly.
        assert_eq!(back.as_asr().transcribe(&wave), quantized.as_asr().transcribe(&wave));
    }

    #[test]
    fn corrupt_quantized_artifact_is_refused_with_a_typed_error() {
        let quantized = quantized_kaldi();
        let mut bytes = Vec::new();
        quantized.write_to(&mut bytes).unwrap();
        // Flip one payload byte: the checksum must catch it cleanly.
        let at = bytes.len() / 2;
        bytes[at] ^= 0x40;
        assert!(matches!(
            QuantizedAsr::read_from(&bytes[..]),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        // Truncation is equally typed, never a panic.
        let cut = &bytes[..bytes.len() / 3];
        assert!(QuantizedAsr::read_from(cut).is_err());
    }
}
