//! Phoneme assembly and language generation: lexicon-driven word decoding.
//!
//! Implements the last two stages of the paper's Figure 2: the collapsed
//! phoneme stream is split at silences into word chunks, each chunk is
//! matched against the pronunciation lexicon (dictionary correction), and a
//! Viterbi pass over the chunk candidates under the bigram language model
//! picks the final word sequence (language generation). Homophones tie on
//! edit distance, so the language model — which differs per ASR profile —
//! makes the choice.

use mvp_dsp::mfcc::FeatureMatrix;
use mvp_phonetics::{Lexicon, Phoneme};

use crate::ctc::greedy_phonemes;
use crate::lm::BigramLm;

/// Decoder tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderConfig {
    /// Frames below this run length are treated as transition noise.
    pub min_run: usize,
    /// Word candidates kept per chunk.
    pub top_k: usize,
    /// Weight of the (normalised) phoneme edit distance.
    pub edit_weight: f64,
    /// Weight of the negative LM log-probability.
    pub lm_weight: f64,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig { min_run: 2, top_k: 5, edit_weight: 6.0, lm_weight: 1.0 }
    }
}

/// The word decoder of one ASR profile.
#[derive(Debug, Clone)]
pub struct Decoder {
    vocab: Vec<(String, Vec<Phoneme>)>,
    lm: BigramLm,
    cfg: DecoderConfig,
}

impl Decoder {
    /// Builds a decoder over every explicit word of `lexicon`, scored by
    /// `lm`.
    ///
    /// # Panics
    ///
    /// Panics if the lexicon has no explicit entries.
    pub fn new(lexicon: &Lexicon, lm: BigramLm, cfg: DecoderConfig) -> Decoder {
        let mut vocab: Vec<(String, Vec<Phoneme>)> =
            lexicon.words().map(|w| (w.to_string(), lexicon.pronounce(w))).collect();
        assert!(!vocab.is_empty(), "decoder needs a non-empty lexicon");
        vocab.sort(); // deterministic candidate ordering
        Decoder { vocab, lm, cfg }
    }

    /// The language model scoring word transitions.
    pub fn lm(&self) -> &BigramLm {
        &self.lm
    }

    /// The decoder tuning parameters.
    pub fn config(&self) -> &DecoderConfig {
        &self.cfg
    }

    /// Decodes a logit matrix (`n_frames × n_classes`) to a transcription.
    pub fn decode(&self, logits: &FeatureMatrix) -> String {
        if logits.is_empty() {
            return String::new();
        }
        let seq = greedy_phonemes(logits, self.cfg.min_run);
        self.decode_phonemes(&seq)
    }

    /// Decodes the frames accumulated in an incremental greedy-CTC state —
    /// the running-best transcript of a stream in flight, and, after the
    /// last frame, exactly what [`decode`](Self::decode) produces for the
    /// full logit matrix.
    pub fn decode_runs(&self, acc: &crate::ctc::RunAccumulator) -> String {
        self.decode_phonemes(&acc.phonemes(self.cfg.min_run))
    }

    /// Decodes an explicit collapsed phoneme sequence (with SIL word
    /// separators) to a transcription.
    pub fn decode_phonemes(&self, seq: &[Phoneme]) -> String {
        let chunks: Vec<&[Phoneme]> =
            seq.split(|&p| p == Phoneme::SIL).filter(|c| !c.is_empty()).collect();
        if chunks.is_empty() {
            return String::new();
        }
        // Candidate words per chunk.
        let candidates: Vec<Vec<(usize, f64)>> =
            chunks.iter().map(|c| self.chunk_candidates(c)).collect();
        // Viterbi over chunks.
        let first = &candidates[0];
        let mut score: Vec<f64> = first
            .iter()
            .map(|&(w, edit)| {
                self.cfg.edit_weight * edit
                    - self.cfg.lm_weight * self.lm.log_prob(None, &self.vocab[w].0)
            })
            .collect();
        let mut back: Vec<Vec<usize>> = vec![vec![0; first.len()]];
        for ci in 1..candidates.len() {
            let cur = &candidates[ci];
            let prev = &candidates[ci - 1];
            let mut new_score = Vec::with_capacity(cur.len());
            let mut new_back = Vec::with_capacity(cur.len());
            for &(w, edit) in cur {
                let word = &self.vocab[w].0;
                let (best_prev, best) = prev
                    .iter()
                    .enumerate()
                    .map(|(pi, &(pw, _))| {
                        (
                            pi,
                            score[pi]
                                - self.cfg.lm_weight
                                    * self.lm.log_prob(Some(&self.vocab[pw].0), word),
                        )
                    })
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    // mvp-lint: allow(panic-path) -- chunk_candidates yields >= 1 entry for the non-empty vocab asserted in `new`
                    .expect("non-empty candidates");
                new_score.push(best + self.cfg.edit_weight * edit);
                new_back.push(best_prev);
            }
            score = new_score;
            back.push(new_back);
        }
        // Backtrack.
        let mut idx = score
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            // mvp-lint: allow(panic-path) -- `score` carries one entry per candidate; vocab is asserted non-empty in `new`
            .expect("non-empty final candidates");
        let mut words = Vec::with_capacity(candidates.len());
        for ci in (0..candidates.len()).rev() {
            words.push(self.vocab[candidates[ci][idx].0].0.clone());
            idx = back[ci][idx];
        }
        words.reverse();
        words.join(" ")
    }

    /// Top-k `(vocab index, normalised edit distance)` candidates for a
    /// chunk of phonemes.
    fn chunk_candidates(&self, chunk: &[Phoneme]) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> = self
            .vocab
            .iter()
            .enumerate()
            .map(|(i, (_, pron))| {
                let d = phoneme_edit_distance(chunk, pron);
                (i, d as f64 / chunk.len().max(pron.len()) as f64)
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(self.cfg.top_k.max(1));
        scored
    }
}

/// Levenshtein distance between two phoneme sequences.
pub fn phoneme_edit_distance(a: &[Phoneme], b: &[Phoneme]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &pa) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &pb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(pa != pb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_phonetics::Lexicon;

    fn decoder() -> Decoder {
        let lm = BigramLm::train(
            [
                "open the front door",
                "open the back door",
                "i see the sea",
                "we see the sea",
                "the man walked the street",
                "turn on the lights",
            ],
            0.05,
        );
        Decoder::new(&Lexicon::builtin(), lm, DecoderConfig::default())
    }

    /// Builds one-hot logits from a phoneme sequence, `per` frames each.
    fn logits_for(seq: &[Phoneme], per: usize) -> FeatureMatrix {
        let mut m = FeatureMatrix::zeros(0, Phoneme::COUNT);
        for p in seq {
            let mut l = vec![-4.0; Phoneme::COUNT];
            l[p.index()] = 4.0;
            for _ in 0..per {
                m.push_row(&l);
            }
        }
        m
    }

    #[test]
    fn decodes_clean_phoneme_stream() {
        let lex = Lexicon::builtin();
        let d = decoder();
        let seq = lex.pronounce_sentence("open the front door");
        let text = d.decode(&logits_for(&seq, 5));
        assert_eq!(text, "open the front door");
    }

    #[test]
    fn decodes_with_substituted_phoneme() {
        let lex = Lexicon::builtin();
        let d = decoder();
        let mut seq = lex.pronounce_sentence("open the front door");
        // Corrupt one phoneme inside "front".
        let pos = seq.iter().position(|&p| p == Phoneme::F).unwrap();
        seq[pos + 1] = Phoneme::L;
        let text = d.decode(&logits_for(&seq, 5));
        assert_eq!(text, "open the front door");
    }

    #[test]
    fn homophone_resolved_by_language_model() {
        let lex = Lexicon::builtin();
        let d = decoder();
        // "see"/"sea" share a pronunciation; after "the", the LM prefers "sea".
        let seq = lex.pronounce_sentence("i see the sea");
        let text = d.decode(&logits_for(&seq, 5));
        assert_eq!(text, "i see the sea");
    }

    #[test]
    fn empty_logits_empty_text() {
        assert_eq!(decoder().decode(&FeatureMatrix::default()), "");
    }

    #[test]
    fn silence_only_is_empty() {
        let d = decoder();
        let seq = vec![Phoneme::SIL; 4];
        assert_eq!(d.decode(&logits_for(&seq, 4)), "");
    }

    #[test]
    fn edit_distance_basics() {
        use Phoneme::*;
        assert_eq!(phoneme_edit_distance(&[S, IY], &[S, IY]), 0);
        assert_eq!(phoneme_edit_distance(&[S, IY], &[S, EY]), 1);
        assert_eq!(phoneme_edit_distance(&[], &[S, EY]), 2);
    }

    #[test]
    fn lm_weight_zero_falls_back_to_pure_edit_distance() {
        // With the LM silenced, homophone choice is decided by candidate
        // ordering alone, but exact pronunciations still decode correctly.
        let lex = Lexicon::builtin();
        let lm = BigramLm::train(["i see the sea"], 0.05);
        let d =
            Decoder::new(&lex, lm, DecoderConfig { lm_weight: 0.0, ..DecoderConfig::default() });
        let seq = lex.pronounce_sentence("open the front door");
        assert_eq!(d.decode(&logits_for(&seq, 5)), "open the front door");
    }

    #[test]
    fn top_k_one_still_decodes_exact_matches() {
        let lex = Lexicon::builtin();
        let lm = BigramLm::train(["turn on the lights"], 0.05);
        let d = Decoder::new(&lex, lm, DecoderConfig { top_k: 1, ..DecoderConfig::default() });
        let seq = lex.pronounce_sentence("turn on the lights");
        // With k=1 homophone ties resolve to the lexicographically first
        // candidate, so only check WER-0-modulo-homophony.
        let text = d.decode(&logits_for(&seq, 5));
        assert_eq!(lex.pronounce_sentence(&text), lex.pronounce_sentence("turn on the lights"));
    }

    #[test]
    fn noisy_transition_frames_are_ignored() {
        // One-frame glitches between phonemes (below min_run) must not
        // corrupt the decoding.
        let lex = Lexicon::builtin();
        let d = decoder();
        let seq = lex.pronounce_sentence("open the door");
        let mut logits = FeatureMatrix::zeros(0, Phoneme::COUNT);
        for p in &seq {
            let mut l = vec![-4.0; Phoneme::COUNT];
            l[p.index()] = 4.0;
            for _ in 0..5 {
                logits.push_row(&l);
            }
            // Glitch frame.
            let mut g = vec![-4.0; Phoneme::COUNT];
            g[Phoneme::Z.index()] = 4.0;
            logits.push_row(&g);
        }
        assert_eq!(d.decode(&logits), "open the door");
    }

    #[test]
    fn nan_lm_weight_decodes_without_panicking() {
        // A NaN lm_weight poisons every beam score; the total_cmp
        // comparators must order the poisoned scores instead of
        // panicking the way partial_cmp().expect() used to.
        let lex = Lexicon::builtin();
        let lm = BigramLm::train(["open the front door"], 0.05);
        let d = Decoder::new(
            &lex,
            lm,
            DecoderConfig { lm_weight: f64::NAN, ..DecoderConfig::default() },
        );
        let seq = lex.pronounce_sentence("open the front door");
        // The transcript is arbitrary under NaN scoring; surviving the
        // decode is the contract.
        let _ = d.decode(&logits_for(&seq, 5));
    }

    #[test]
    #[should_panic(expected = "non-empty lexicon")]
    fn empty_lexicon_rejected() {
        let lm = BigramLm::train(["x"], 0.1);
        Decoder::new(&Lexicon::new(), lm, DecoderConfig::default());
    }
}
