//! CTC: greedy best-path decoding and the forward-backward loss with exact
//! gradients.
//!
//! Silence ([`Phoneme::SIL`]) is a *regular* output symbol (the analogue of
//! DeepSpeech's space character), so CTC targets carry word boundaries; a
//! dedicated blank class sits at index [`Phoneme::COUNT`]. The loss
//! gradient (`softmax − occupancy`) is what the white-box attack pushes
//! back through the acoustic model and MFCC pipeline into the waveform.

use mvp_dsp::kernel;
use mvp_dsp::mfcc::FeatureMatrix;
use mvp_phonetics::Phoneme;

use crate::am::{argmax, softmax_into};

/// The class index used as the CTC blank (one past the phoneme inventory).
pub fn blank_index() -> usize {
    Phoneme::COUNT
}

/// Per-frame argmax labels with runs shorter than `min_run` removed
/// (transition-frame denoising), then collapsed (consecutive duplicates
/// merged).
///
/// The result retains [`Phoneme::SIL`] entries — the word decoder uses them
/// as word-boundary separators. This is one batch drive of a
/// [`RunAccumulator`], so chunked and one-shot decoding share the
/// denoise/collapse logic by construction.
pub fn greedy_phonemes(logits: &FeatureMatrix, min_run: usize) -> Vec<Phoneme> {
    let mut acc = RunAccumulator::default();
    for row in logits.rows() {
        acc.push_logits_row(row);
    }
    acc.phonemes(min_run)
}

/// Incremental greedy best-path state: per-frame argmax labels folded into
/// `(label, run length)` pairs as frames arrive.
///
/// The streaming ASR path pushes each new logit row here and can ask for
/// the running phoneme sequence at any point; [`greedy_phonemes`] drives
/// the same accumulator over a whole matrix, so the final chunked decode is
/// byte-identical to the batch decode.
#[derive(Debug, Clone, Default)]
pub struct RunAccumulator {
    /// `(label, length)` for each maximal run of equal argmax labels.
    runs: Vec<(usize, usize)>,
    n_frames: usize,
}

impl RunAccumulator {
    /// Clears the state for a new utterance, keeping capacity.
    pub fn reset(&mut self) {
        self.runs.clear();
        self.n_frames = 0;
    }

    /// Number of logit frames consumed since the last reset.
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Consumes one frame of logits: argmax with the blank class (never
    /// seen in training, so effectively never the argmax) folded into
    /// silence for word chunking.
    pub fn push_logits_row(&mut self, row: &[f64]) {
        let a = argmax(row);
        self.push_label(if a >= Phoneme::COUNT { Phoneme::SIL.index() } else { a });
    }

    /// Consumes one pre-computed frame label.
    pub fn push_label(&mut self, label: usize) {
        self.n_frames += 1;
        match self.runs.last_mut() {
            Some((prev, n)) if *prev == label => *n += 1,
            _ => self.runs.push((label, 1)),
        }
    }

    /// The denoised (runs shorter than `min_run` dropped) and collapsed
    /// phoneme sequence of the frames seen so far.
    pub fn phonemes(&self, min_run: usize) -> Vec<Phoneme> {
        let mut out: Vec<Phoneme> = Vec::new();
        for &(label, n) in &self.runs {
            if n < min_run {
                continue;
            }
            let ph = Phoneme::from_index(label);
            if out.last() != Some(&ph) {
                out.push(ph);
            }
        }
        out
    }
}

/// Collapses per-frame labels CTC-style: merge repeats, then drop blanks.
pub fn collapse_labels(labels: &[usize]) -> Vec<usize> {
    let blank = blank_index();
    let mut out = Vec::new();
    let mut prev = usize::MAX;
    for &l in labels {
        if l != prev && l != blank {
            out.push(l);
        }
        prev = l;
    }
    out
}

/// Allocation-free log-sum-exp over a cloneable iterator (the trellis
/// calls this per cell, so a temporary `Vec` here dominated the loss).
/// Summation order matches the historical collect-then-sum form
/// bit-for-bit: same max, same left-to-right accumulation over the
/// finite entries.
fn log_sum_exp(values: impl IntoIterator<Item = f64> + Clone) -> f64 {
    let m = values
        .clone()
        .into_iter()
        .filter(|v| *v > f64::NEG_INFINITY)
        .fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 =
        values.into_iter().filter(|v| *v > f64::NEG_INFINITY).map(|v| (v - m).exp()).sum();
    m + sum.ln()
}

/// CTC negative log-likelihood of `target` (class indices, no blanks) under
/// the per-frame `logits`, together with the gradient w.r.t. the logits.
///
/// Returns `(f64::INFINITY, zeros)` when the target cannot be emitted in
/// the available frames.
///
/// # Panics
///
/// Panics if `logits` is empty or `target` contains the blank.
pub fn ctc_loss_and_grad(logits: &FeatureMatrix, target: &[usize]) -> (f64, FeatureMatrix) {
    let t_len = logits.n_frames();
    assert!(t_len > 0, "no frames");
    let c = logits.dim();
    let blank = blank_index();
    assert!(c > blank, "logit width {c} lacks the blank class {blank}");
    assert!(!target.contains(&blank), "target must not contain the blank");

    // Extended label sequence: blank-interleaved.
    let s_len = 2 * target.len() + 1;
    let ext = |s: usize| -> usize {
        if s.is_multiple_of(2) {
            blank
        } else {
            target[s / 2]
        }
    };
    // Minimum frames needed: every label plus a blank between repeated pairs.
    let mut min_frames = target.len();
    for w in target.windows(2) {
        if w[0] == w[1] {
            min_frames += 1;
        }
    }
    if t_len < min_frames {
        return (f64::INFINITY, FeatureMatrix::zeros(t_len, c));
    }

    // Log-softmax per frame, one contiguous matrix. Frames are
    // independent, so this fans out across kernel workers (results are
    // bit-identical at any worker count).
    let mut y = FeatureMatrix::zeros(t_len, c);
    kernel::par_rows(
        y.as_mut_slice(),
        c,
        || (),
        |(), t, out| {
            softmax_into(logits.row(t), out);
            for o in out.iter_mut() {
                *o = o.max(1e-300).ln();
            }
        },
    );
    let y = y;

    const NEG: f64 = f64::NEG_INFINITY;
    // Forward and backward trellises, flat with stride `s_len`.
    let at = |t: usize, s: usize| t * s_len + s;
    let mut alpha = vec![NEG; t_len * s_len];
    alpha[at(0, 0)] = y.row(0)[ext(0)];
    if s_len > 1 {
        alpha[at(0, 1)] = y.row(0)[ext(1)];
    }
    for t in 1..t_len {
        for s in 0..s_len {
            let mut terms = [alpha[at(t - 1, s)], NEG, NEG];
            if s >= 1 {
                terms[1] = alpha[at(t - 1, s - 1)];
            }
            if s >= 2 && ext(s) != blank && ext(s) != ext(s - 2) {
                terms[2] = alpha[at(t - 1, s - 2)];
            }
            let acc = log_sum_exp(terms);
            alpha[at(t, s)] = if acc == NEG { NEG } else { acc + y.row(t)[ext(s)] };
        }
    }
    let log_p = log_sum_exp([
        alpha[at(t_len - 1, s_len - 1)],
        if s_len >= 2 { alpha[at(t_len - 1, s_len - 2)] } else { NEG },
    ]);
    if log_p == NEG {
        return (f64::INFINITY, FeatureMatrix::zeros(t_len, c));
    }

    // Backward (beta excludes the emission at frame t).
    let mut beta = vec![NEG; t_len * s_len];
    beta[at(t_len - 1, s_len - 1)] = 0.0;
    if s_len >= 2 {
        beta[at(t_len - 1, s_len - 2)] = 0.0;
    }
    for t in (0..t_len - 1).rev() {
        for s in 0..s_len {
            let mut terms = [beta[at(t + 1, s)] + y.row(t + 1)[ext(s)], NEG, NEG];
            if s + 1 < s_len {
                terms[1] = beta[at(t + 1, s + 1)] + y.row(t + 1)[ext(s + 1)];
            }
            if s + 2 < s_len && ext(s + 2) != blank && ext(s + 2) != ext(s) {
                terms[2] = beta[at(t + 1, s + 2)] + y.row(t + 1)[ext(s + 2)];
            }
            beta[at(t, s)] = log_sum_exp(terms);
        }
    }

    // Gradient: softmax − occupancy. Each frame reads only its own
    // trellis column, so the rows fan out across kernel workers with a
    // per-worker (probs, occupancy) scratch pair.
    let mut grad = FeatureMatrix::zeros(t_len, c);
    let (alpha_ref, beta_ref, ext_ref) = (&alpha, &beta, &ext);
    kernel::par_rows(
        grad.as_mut_slice(),
        c,
        || (vec![0.0; c], vec![NEG; c]),
        |(probs, occ_log), t, row| {
            softmax_into(logits.row(t), probs);
            // Occupancy per class at frame t.
            occ_log.fill(NEG);
            for s in 0..s_len {
                let v = alpha_ref[at(t, s)] + beta_ref[at(t, s)];
                if v > NEG {
                    let k = ext_ref(s);
                    occ_log[k] = log_sum_exp([occ_log[k], v]);
                }
            }
            for (k, o) in row.iter_mut().enumerate() {
                let occ = if occ_log[k] == NEG { 0.0 } else { (occ_log[k] - log_p).exp() };
                *o = probs[k] - occ;
            }
        },
    );
    (-log_p, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::N_CLASSES;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_logits(t: usize, c: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = FeatureMatrix::zeros(t, c);
        for v in m.as_mut_slice() {
            *v = rng.gen_range(-2.0..2.0);
        }
        m
    }

    #[test]
    fn greedy_collapses_and_denoises() {
        let mk = |idx: usize| {
            let mut l = vec![0.0; N_CLASSES];
            l[idx] = 10.0;
            l
        };
        let a = Phoneme::AA.index();
        let b = Phoneme::B.index();
        let sil = Phoneme::SIL.index();
        // AA AA AA (B glitch) AA SIL SIL B B
        let logits = FeatureMatrix::from_rows(
            vec![mk(a), mk(a), mk(a), mk(b), mk(a), mk(sil), mk(sil), mk(b), mk(b)],
            N_CLASSES,
        );
        let seq = greedy_phonemes(&logits, 2);
        assert_eq!(seq, vec![Phoneme::AA, Phoneme::SIL, Phoneme::B]);
    }

    #[test]
    fn run_accumulator_matches_batch_greedy_and_resets() {
        let logits = random_logits(40, N_CLASSES, 11);
        for min_run in [1usize, 2, 3] {
            let mut acc = RunAccumulator::default();
            for row in logits.rows() {
                acc.push_logits_row(row);
            }
            assert_eq!(acc.phonemes(min_run), greedy_phonemes(&logits, min_run));
            assert_eq!(acc.n_frames(), 40);
            acc.reset();
            assert_eq!(acc.n_frames(), 0);
            assert!(acc.phonemes(min_run).is_empty());
        }
    }

    #[test]
    fn collapse_labels_drops_blanks_and_repeats() {
        let blank = blank_index();
        let labels = vec![blank, 3, 3, blank, 3, 5, 5, blank];
        assert_eq!(collapse_labels(&labels), vec![3, 3, 5]);
    }

    #[test]
    fn impossible_target_is_infinite() {
        let logits = random_logits(2, N_CLASSES, 1);
        let target = vec![1, 2, 3]; // needs >= 3 frames
        let (loss, grad) = ctc_loss_and_grad(&logits, &target);
        assert!(loss.is_infinite());
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn perfect_path_has_low_loss() {
        let target = vec![Phoneme::AA.index(), Phoneme::B.index()];
        let blank = blank_index();
        let path = [blank, target[0], target[0], blank, target[1], blank];
        let logits = FeatureMatrix::from_rows(
            path.iter()
                .map(|&k| {
                    let mut l = vec![-5.0; N_CLASSES];
                    l[k] = 5.0;
                    l
                })
                .collect(),
            N_CLASSES,
        );
        let (loss, _) = ctc_loss_and_grad(&logits, &target);
        assert!(loss < 0.1, "loss {loss}");
        // A wrong target under the same logits scores much worse.
        let (wrong, _) = ctc_loss_and_grad(&logits, &[Phoneme::S.index()]);
        assert!(wrong > loss + 2.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let t = 6;
        let c = 8; // use a small class count via fake blank? blank index is SIL
                   // Use the real class count so blank_index() is valid.
        let _ = c;
        let logits = random_logits(t, N_CLASSES, 42);
        let target = vec![Phoneme::AA.index(), Phoneme::B.index(), Phoneme::AA.index()];
        let (_, grad) = ctc_loss_and_grad(&logits, &target);
        let eps = 1e-6;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let ti = rng.gen_range(0..t);
            let ci = rng.gen_range(0..N_CLASSES);
            let mut hi = logits.clone();
            hi.row_mut(ti)[ci] += eps;
            let mut lo = logits.clone();
            lo.row_mut(ti)[ci] -= eps;
            let (lh, _) = ctc_loss_and_grad(&hi, &target);
            let (ll, _) = ctc_loss_and_grad(&lo, &target);
            let fd = (lh - ll) / (2.0 * eps);
            assert!(
                (grad.row(ti)[ci] - fd).abs() < 1e-5,
                "({ti},{ci}): analytic {} vs fd {fd}",
                grad.row(ti)[ci]
            );
        }
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let mut logits = random_logits(10, N_CLASSES, 3);
        let target = vec![Phoneme::S.index(), Phoneme::IY.index()];
        let (before, grad) = ctc_loss_and_grad(&logits, &target);
        for (lv, gv) in logits.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *lv -= 0.5 * gv;
        }
        let (after, _) = ctc_loss_and_grad(&logits, &target);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn empty_target_prefers_all_blank() {
        let blank = blank_index();
        let mut logits = random_logits(4, N_CLASSES, 9);
        for t in 0..logits.n_frames() {
            logits.row_mut(t)[blank] = 9.0;
        }
        let (loss, _) = ctc_loss_and_grad(&logits, &[]);
        assert!(loss < 0.5, "loss {loss}");
    }

    #[test]
    fn repeated_labels_need_separating_blank() {
        // Target [X, X] requires at least 3 frames (X, blank, X).
        let target = vec![Phoneme::T.index(), Phoneme::T.index()];
        let logits = random_logits(2, N_CLASSES, 5);
        let (loss, _) = ctc_loss_and_grad(&logits, &target);
        assert!(loss.is_infinite());
        let logits3 = random_logits(3, N_CLASSES, 5);
        let (loss3, _) = ctc_loss_and_grad(&logits3, &target);
        assert!(loss3.is_finite());
    }
}
