//! CTC: greedy best-path decoding and the forward-backward loss with exact
//! gradients.
//!
//! Silence ([`Phoneme::SIL`]) is a *regular* output symbol (the analogue of
//! DeepSpeech's space character), so CTC targets carry word boundaries; a
//! dedicated blank class sits at index [`Phoneme::COUNT`]. The loss
//! gradient (`softmax − occupancy`) is what the white-box attack pushes
//! back through the acoustic model and MFCC pipeline into the waveform.

use mvp_phonetics::Phoneme;

use crate::am::{argmax, softmax};

/// The class index used as the CTC blank (one past the phoneme inventory).
pub fn blank_index() -> usize {
    Phoneme::COUNT
}

/// Per-frame argmax labels with runs shorter than `min_run` removed
/// (transition-frame denoising), then collapsed (consecutive duplicates
/// merged).
///
/// The result retains [`Phoneme::SIL`] entries — the word decoder uses them
/// as word-boundary separators.
pub fn greedy_phonemes(logits: &[Vec<f64>], min_run: usize) -> Vec<Phoneme> {
    // The blank class (never seen in training, so effectively never the
    // argmax) is folded into silence for word chunking.
    let sil = Phoneme::SIL.index();
    let labels: Vec<usize> =
        logits.iter().map(|l| { let a = argmax(l); if a >= Phoneme::COUNT { sil } else { a } }).collect();
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (label, length)
    for &l in &labels {
        match runs.last_mut() {
            Some((prev, n)) if *prev == l => *n += 1,
            _ => runs.push((l, 1)),
        }
    }
    let mut out: Vec<Phoneme> = Vec::new();
    for (label, n) in runs {
        if n < min_run {
            continue;
        }
        let ph = Phoneme::from_index(label);
        if out.last() != Some(&ph) {
            out.push(ph);
        }
    }
    out
}

/// Collapses per-frame labels CTC-style: merge repeats, then drop blanks.
pub fn collapse_labels(labels: &[usize]) -> Vec<usize> {
    let blank = blank_index();
    let mut out = Vec::new();
    let mut prev = usize::MAX;
    for &l in labels {
        if l != prev && l != blank {
            out.push(l);
        }
        prev = l;
    }
    out
}

fn log_sum_exp(values: impl IntoIterator<Item = f64>) -> f64 {
    let vals: Vec<f64> = values.into_iter().filter(|v| *v > f64::NEG_INFINITY).collect();
    if vals.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    m + vals.iter().map(|v| (v - m).exp()).sum::<f64>().ln()
}

/// CTC negative log-likelihood of `target` (class indices, no blanks) under
/// the per-frame `logits`, together with the gradient w.r.t. the logits.
///
/// Returns `(f64::INFINITY, zeros)` when the target cannot be emitted in
/// the available frames.
///
/// # Panics
///
/// Panics if `logits` is empty or ragged, or `target` contains the blank.
pub fn ctc_loss_and_grad(logits: &[Vec<f64>], target: &[usize]) -> (f64, Vec<Vec<f64>>) {
    let t_len = logits.len();
    assert!(t_len > 0, "no frames");
    let c = logits[0].len();
    assert!(logits.iter().all(|l| l.len() == c), "ragged logit matrix");
    let blank = blank_index();
    assert!(c > blank, "logit width {c} lacks the blank class {blank}");
    assert!(!target.contains(&blank), "target must not contain the blank");

    // Extended label sequence: blank-interleaved.
    let s_len = 2 * target.len() + 1;
    let ext = |s: usize| -> usize {
        if s.is_multiple_of(2) {
            blank
        } else {
            target[s / 2]
        }
    };
    // Minimum frames needed: every label plus a blank between repeated pairs.
    let mut min_frames = target.len();
    for w in target.windows(2) {
        if w[0] == w[1] {
            min_frames += 1;
        }
    }
    let zeros = vec![vec![0.0; c]; t_len];
    if t_len < min_frames {
        return (f64::INFINITY, zeros);
    }

    let y: Vec<Vec<f64>> = logits
        .iter()
        .map(|l| {
            let p = softmax(l);
            p.into_iter().map(|v| v.max(1e-300).ln()).collect()
        })
        .collect();

    const NEG: f64 = f64::NEG_INFINITY;
    // Forward.
    let mut alpha = vec![vec![NEG; s_len]; t_len];
    alpha[0][0] = y[0][ext(0)];
    if s_len > 1 {
        alpha[0][1] = y[0][ext(1)];
    }
    for t in 1..t_len {
        for s in 0..s_len {
            let mut terms = vec![alpha[t - 1][s]];
            if s >= 1 {
                terms.push(alpha[t - 1][s - 1]);
            }
            if s >= 2 && ext(s) != blank && ext(s) != ext(s - 2) {
                terms.push(alpha[t - 1][s - 2]);
            }
            let acc = log_sum_exp(terms);
            alpha[t][s] = if acc == NEG { NEG } else { acc + y[t][ext(s)] };
        }
    }
    let log_p = log_sum_exp([
        alpha[t_len - 1][s_len - 1],
        if s_len >= 2 { alpha[t_len - 1][s_len - 2] } else { NEG },
    ]);
    if log_p == NEG {
        return (f64::INFINITY, zeros);
    }

    // Backward (beta excludes the emission at frame t).
    let mut beta = vec![vec![NEG; s_len]; t_len];
    beta[t_len - 1][s_len - 1] = 0.0;
    if s_len >= 2 {
        beta[t_len - 1][s_len - 2] = 0.0;
    }
    for t in (0..t_len - 1).rev() {
        for s in 0..s_len {
            let mut terms = vec![beta[t + 1][s] + y[t + 1][ext(s)]];
            if s + 1 < s_len {
                terms.push(beta[t + 1][s + 1] + y[t + 1][ext(s + 1)]);
            }
            if s + 2 < s_len && ext(s + 2) != blank && ext(s + 2) != ext(s) {
                terms.push(beta[t + 1][s + 2] + y[t + 1][ext(s + 2)]);
            }
            beta[t][s] = log_sum_exp(terms);
        }
    }

    // Gradient: softmax − occupancy.
    let mut grad = vec![vec![0.0; c]; t_len];
    for t in 0..t_len {
        let probs = softmax(&logits[t]);
        // Occupancy per class at frame t.
        let mut occ_log = vec![NEG; c];
        for s in 0..s_len {
            let v = alpha[t][s] + beta[t][s];
            if v > NEG {
                let k = ext(s);
                occ_log[k] = log_sum_exp([occ_log[k], v]);
            }
        }
        for k in 0..c {
            let occ = if occ_log[k] == NEG { 0.0 } else { (occ_log[k] - log_p).exp() };
            grad[t][k] = probs[k] - occ;
        }
    }
    (-log_p, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::am::N_CLASSES;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_logits(t: usize, c: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t).map(|_| (0..c).map(|_| rng.gen_range(-2.0..2.0)).collect()).collect()
    }

    #[test]
    fn greedy_collapses_and_denoises() {
        let mk = |idx: usize| {
            let mut l = vec![0.0; N_CLASSES];
            l[idx] = 10.0;
            l
        };
        let a = Phoneme::AA.index();
        let b = Phoneme::B.index();
        let sil = Phoneme::SIL.index();
        // AA AA AA (B glitch) AA SIL SIL B B
        let logits = vec![mk(a), mk(a), mk(a), mk(b), mk(a), mk(sil), mk(sil), mk(b), mk(b)];
        let seq = greedy_phonemes(&logits, 2);
        assert_eq!(seq, vec![Phoneme::AA, Phoneme::SIL, Phoneme::B]);
    }

    #[test]
    fn collapse_labels_drops_blanks_and_repeats() {
        let blank = blank_index();
        let labels = vec![blank, 3, 3, blank, 3, 5, 5, blank];
        assert_eq!(collapse_labels(&labels), vec![3, 3, 5]);
    }

    #[test]
    fn impossible_target_is_infinite() {
        let logits = random_logits(2, N_CLASSES, 1);
        let target = vec![1, 2, 3]; // needs >= 3 frames
        let (loss, grad) = ctc_loss_and_grad(&logits, &target);
        assert!(loss.is_infinite());
        assert!(grad.iter().flatten().all(|&g| g == 0.0));
    }

    #[test]
    fn perfect_path_has_low_loss() {
        let target = vec![Phoneme::AA.index(), Phoneme::B.index()];
        let blank = blank_index();
        let path = [blank, target[0], target[0], blank, target[1], blank];
        let logits: Vec<Vec<f64>> = path
            .iter()
            .map(|&k| {
                let mut l = vec![-5.0; N_CLASSES];
                l[k] = 5.0;
                l
            })
            .collect();
        let (loss, _) = ctc_loss_and_grad(&logits, &target);
        assert!(loss < 0.1, "loss {loss}");
        // A wrong target under the same logits scores much worse.
        let (wrong, _) = ctc_loss_and_grad(&logits, &[Phoneme::S.index()]);
        assert!(wrong > loss + 2.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let t = 6;
        let c = 8; // use a small class count via fake blank? blank index is SIL
        // Use the real class count so blank_index() is valid.
        let _ = c;
        let logits = random_logits(t, N_CLASSES, 42);
        let target = vec![Phoneme::AA.index(), Phoneme::B.index(), Phoneme::AA.index()];
        let (_, grad) = ctc_loss_and_grad(&logits, &target);
        let eps = 1e-6;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let ti = rng.gen_range(0..t);
            let ci = rng.gen_range(0..N_CLASSES);
            let mut hi = logits.clone();
            hi[ti][ci] += eps;
            let mut lo = logits.clone();
            lo[ti][ci] -= eps;
            let (lh, _) = ctc_loss_and_grad(&hi, &target);
            let (ll, _) = ctc_loss_and_grad(&lo, &target);
            let fd = (lh - ll) / (2.0 * eps);
            assert!(
                (grad[ti][ci] - fd).abs() < 1e-5,
                "({ti},{ci}): analytic {} vs fd {fd}",
                grad[ti][ci]
            );
        }
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let mut logits = random_logits(10, N_CLASSES, 3);
        let target = vec![Phoneme::S.index(), Phoneme::IY.index()];
        let (before, grad) = ctc_loss_and_grad(&logits, &target);
        for (l, g) in logits.iter_mut().zip(&grad) {
            for (lv, gv) in l.iter_mut().zip(g) {
                *lv -= 0.5 * gv;
            }
        }
        let (after, _) = ctc_loss_and_grad(&logits, &target);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn empty_target_prefers_all_blank() {
        let blank = blank_index();
        let mut logits = random_logits(4, N_CLASSES, 9);
        for l in &mut logits {
            l[blank] = 9.0;
        }
        let (loss, _) = ctc_loss_and_grad(&logits, &[]);
        assert!(loss < 0.5, "loss {loss}");
    }

    #[test]
    fn repeated_labels_need_separating_blank() {
        // Target [X, X] requires at least 3 frames (X, blank, X).
        let target = vec![Phoneme::T.index(), Phoneme::T.index()];
        let logits = random_logits(2, N_CLASSES, 5);
        let (loss, _) = ctc_loss_and_grad(&logits, &target);
        assert!(loss.is_infinite());
        let logits3 = random_logits(3, N_CLASSES, 5);
        let (loss3, _) = ctc_loss_and_grad(&logits3, &target);
        assert!(loss3.is_finite());
    }
}
