//! Bigram language model with add-k smoothing.
//!
//! Each ASR profile trains its language model on a *different* sentence
//! sample, so profiles make different homophone choices during word
//! assembly — one of the benign cross-ASR disagreements the phonetic
//! encoding step of the detector is designed to forgive.

use std::collections::HashMap;

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};

/// Sentence-start pseudo-token id.
const BOS: usize = 0;

/// A word-level bigram model.
#[derive(Debug, Clone)]
pub struct BigramLm {
    ids: HashMap<String, usize>,
    unigram: Vec<f64>,
    bigram: HashMap<(usize, usize), f64>,
    k: f64,
}

impl BigramLm {
    /// Trains on an iterator of sentences with smoothing constant `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    pub fn train<'a>(sentences: impl IntoIterator<Item = &'a str>, k: f64) -> BigramLm {
        assert!(k > 0.0, "smoothing constant must be positive");
        let mut ids = HashMap::new();
        let mut unigram = vec![0.0f64]; // slot 0 = BOS
        let mut bigram: HashMap<(usize, usize), f64> = HashMap::new();
        for sentence in sentences {
            let mut prev = BOS;
            unigram[BOS] += 1.0;
            for word in sentence.split_whitespace() {
                let word = word.to_lowercase();
                let next_id = unigram.len();
                let id = *ids.entry(word).or_insert(next_id);
                if id == unigram.len() {
                    unigram.push(0.0);
                }
                unigram[id] += 1.0;
                *bigram.entry((prev, id)).or_insert(0.0) += 1.0;
                prev = id;
            }
        }
        BigramLm { ids, unigram, bigram, k }
    }

    /// Vocabulary size (distinct words seen in training).
    pub fn vocab_size(&self) -> usize {
        self.ids.len()
    }

    fn id(&self, word: &str) -> Option<usize> {
        self.ids.get(&word.to_lowercase()).copied()
    }

    /// Smoothed log `P(word | prev)`; `prev = None` means sentence start.
    ///
    /// Unknown words receive the smoothed floor probability.
    pub fn log_prob(&self, prev: Option<&str>, word: &str) -> f64 {
        let v = self.ids.len() as f64 + 2.0; // + BOS + UNK
        let prev_id = match prev {
            None => Some(BOS),
            Some(p) => self.id(p),
        };
        let word_id = self.id(word);
        let (num, den) = match (prev_id, word_id) {
            (Some(p), Some(w)) => (
                self.bigram.get(&(p, w)).copied().unwrap_or(0.0) + self.k,
                self.unigram[p] + self.k * v,
            ),
            (Some(p), None) => (self.k, self.unigram[p] + self.k * v),
            (None, Some(w)) => (self.unigram[w] + self.k, self.total() + self.k * v),
            (None, None) => (self.k, self.total() + self.k * v),
        };
        (num / den).ln()
    }

    fn total(&self) -> f64 {
        self.unigram.iter().sum()
    }

    /// Log-probability of a word sequence (BOS-anchored product of bigrams).
    pub fn sentence_log_prob(&self, words: &[&str]) -> f64 {
        let mut lp = 0.0;
        let mut prev: Option<&str> = None;
        for &w in words {
            lp += self.log_prob(prev, w);
            prev = Some(w);
        }
        lp
    }
}

impl Persist for BigramLm {
    const KIND: ArtifactKind = ArtifactKind::BIGRAM_LM;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.k);
        enc.put_f64s(&self.unigram);
        // Hash maps iterate in arbitrary order; serialise sorted so the
        // same model always produces the same bytes.
        let mut words: Vec<(&String, &usize)> = self.ids.iter().collect();
        words.sort();
        enc.put_usize(words.len());
        for (word, &id) in words {
            enc.put_str(word);
            enc.put_usize(id);
        }
        let mut pairs: Vec<(&(usize, usize), &f64)> = self.bigram.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        enc.put_usize(pairs.len());
        for (&(prev, next), &count) in pairs {
            enc.put_usize(prev);
            enc.put_usize(next);
            enc.put_f64(count);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let k = dec.f64()?;
        if !(k > 0.0) {
            return Err(ArtifactError::SchemaMismatch(format!("smoothing constant {k}")));
        }
        let unigram = dec.f64s()?;
        let n_words = dec.usize()?;
        if unigram.len() != n_words + 1 {
            return Err(ArtifactError::SchemaMismatch(format!(
                "unigram table {} entries for {n_words} words",
                unigram.len()
            )));
        }
        let mut ids = HashMap::with_capacity(n_words);
        for _ in 0..n_words {
            let word = dec.str()?;
            let id = dec.usize()?;
            if id == BOS || id >= unigram.len() || ids.insert(word, id).is_some() {
                return Err(ArtifactError::SchemaMismatch("word id table inconsistent".into()));
            }
        }
        let n_pairs = dec.usize()?;
        let mut bigram = HashMap::with_capacity(n_pairs);
        for _ in 0..n_pairs {
            let prev = dec.usize()?;
            let next = dec.usize()?;
            let count = dec.f64()?;
            if prev >= unigram.len() || next >= unigram.len() {
                return Err(ArtifactError::SchemaMismatch("bigram id out of range".into()));
            }
            bigram.insert((prev, next), count);
        }
        Ok(BigramLm { ids, unigram, bigram, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BigramLm {
        BigramLm::train(
            [
                "the man walked the dog",
                "the man found the book",
                "the woman found the book",
                "i see the sea",
            ],
            0.1,
        )
    }

    #[test]
    fn frequent_bigrams_beat_rare_ones() {
        let lm = toy();
        assert!(lm.log_prob(Some("the"), "man") > lm.log_prob(Some("the"), "dog"));
        assert!(lm.log_prob(Some("found"), "the") > lm.log_prob(Some("found"), "sea"));
    }

    #[test]
    fn unknown_words_get_floor_probability() {
        let lm = toy();
        let unk = lm.log_prob(Some("the"), "zyzzyva");
        assert!(unk.is_finite());
        assert!(unk < lm.log_prob(Some("the"), "man"));
    }

    #[test]
    fn sentence_scoring_prefers_training_like_text() {
        let lm = toy();
        let good = lm.sentence_log_prob(&["the", "man", "walked", "the", "dog"]);
        let bad = lm.sentence_log_prob(&["dog", "the", "walked", "man", "the"]);
        assert!(good > bad);
    }

    #[test]
    fn homophone_disambiguation_by_context() {
        let lm = BigramLm::train(["i see the sea", "we see the sea", "they see the sea"], 0.05);
        // After "the", the noun "sea" is likelier than the verb "see".
        assert!(lm.log_prob(Some("the"), "sea") > lm.log_prob(Some("the"), "see"));
        // Sentence-initially after "i", "see" is likelier.
        assert!(lm.log_prob(Some("i"), "see") > lm.log_prob(Some("i"), "sea"));
    }

    #[test]
    fn case_insensitive() {
        let lm = toy();
        assert_eq!(lm.log_prob(Some("THE"), "Man"), lm.log_prob(Some("the"), "man"));
    }

    #[test]
    fn persisted_lm_is_deterministic_and_faithful() {
        let lm = toy();
        let mut a = Vec::new();
        lm.write_to(&mut a).unwrap();
        // Same model, fresh hash maps: byte-identical artifact.
        let mut b = Vec::new();
        toy().write_to(&mut b).unwrap();
        assert_eq!(a, b);
        let back = BigramLm::read_from(&a[..]).unwrap();
        assert_eq!(back.vocab_size(), lm.vocab_size());
        for (prev, word) in
            [(None, "the"), (Some("the"), "man"), (Some("found"), "sea"), (Some("x"), "zyzzyva")]
        {
            assert_eq!(back.log_prob(prev, word).to_bits(), lm.log_prob(prev, word).to_bits());
        }
    }

    #[test]
    fn probabilities_normalise_approximately() {
        // Σ_w P(w | prev) over seen vocab + UNK ≈ 1 (within smoothing mass).
        let lm = toy();
        let mut total = 0.0;
        for w in lm.ids.keys() {
            total += lm.log_prob(Some("the"), w).exp();
        }
        total += lm.log_prob(Some("the"), "zzz-unk").exp();
        assert!(total < 1.0 + 1e-9);
        assert!(total > 0.8, "mass {total}");
    }
}
