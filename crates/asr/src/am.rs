//! Frame-level acoustic model: feature standardisation + a small MLP
//! (one ReLU hidden layer) + softmax.
//!
//! The model assigns each stacked feature frame a distribution over the
//! ARPAbet classes plus the CTC blank. It is trained with mini-batch SGD on
//! frame labels derived from the synthesizer's sample-exact alignments.
//!
//! The hidden layer matters beyond accuracy: a *linear* acoustic model
//! trained on similar data always converges to nearly the same decision
//! boundary, so adversarial perturbations would transfer between profiles
//! almost perfectly — the opposite of what the paper observes for real
//! DNN-based ASRs. With a nonlinear model, each profile's random
//! initialisation yields genuinely different hidden-unit boundaries, and a
//! white-box attack overfits the target's boundaries specifically, which is
//! precisely the mechanism behind the poor cross-ASR transferability the
//! detection system exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder as FieldDecoder, Encoder, Persist};
use mvp_dsp::kernel;
use mvp_dsp::mfcc::FeatureMatrix;
use mvp_ml::quant::{Calibration, InputQuantizer, QuantizedMatrix};
use mvp_phonetics::Phoneme;

/// Per-dimension standardisation fitted on training data.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScaler {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
}

impl FeatureScaler {
    /// Fits mean/std on the rows of `feats`.
    ///
    /// # Panics
    ///
    /// Panics if `feats` has no rows.
    pub fn fit(feats: &FeatureMatrix) -> FeatureScaler {
        assert!(!feats.is_empty(), "cannot fit scaler on empty data");
        let d = feats.dim();
        let n = feats.n_frames() as f64;
        let mut mean = vec![0.0; d];
        for r in feats.rows() {
            for (m, &v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for r in feats.rows() {
            for ((v, &x), &m) in var.iter_mut().zip(r).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let inv_std = var.iter().map(|&v| 1.0 / (v / n).sqrt().max(1e-6)).collect();
        FeatureScaler { mean, inv_std }
    }

    /// Applies the standardisation.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; row.len()];
        self.transform_into(row, &mut out);
        out
    }

    /// Allocation-free [`transform`](Self::transform): writes the
    /// standardised row into `out`.
    pub fn transform_into(&self, row: &[f64], out: &mut [f64]) {
        for (o, ((&x, &m), &s)) in out.iter_mut().zip(row.iter().zip(&self.mean).zip(&self.inv_std))
        {
            *o = (x - m) * s;
        }
    }

    /// Backward: gradient w.r.t. the unscaled features.
    pub fn backward(&self, d_scaled: &[f64]) -> Vec<f64> {
        let mut out = d_scaled.to_vec();
        self.backward_in_place(&mut out);
        out
    }

    /// In-place [`backward`](Self::backward): rescales a gradient over the
    /// standardised features into one over the raw features.
    pub fn backward_in_place(&self, d_scaled: &mut [f64]) {
        for (g, &s) in d_scaled.iter_mut().zip(&self.inv_std) {
            *g *= s;
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

/// Training hyper-parameters for [`AcousticModel::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// SGD step size.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub l2: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Shuffling / init seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 10, learning_rate: 0.08, l2: 1e-5, batch: 32, hidden: 64, seed: 1 }
    }
}

/// Number of output classes: the full phoneme inventory plus a dedicated
/// CTC blank.
///
/// Silence is a *regular* class (like DeepSpeech's space character), so
/// attack targets can contain word boundaries; the blank class never occurs
/// in training labels and exists only so the CTC loss has its usual
/// topology.
pub const N_CLASSES: usize = Phoneme::COUNT + 1;

/// Reusable workspace for the acoustic model's per-row passes
/// ([`AcousticModel::logits_into`],
/// [`AcousticModel::backward_to_features_into`]).
#[derive(Debug, Clone, Default)]
pub struct AmScratch {
    x: Vec<f64>,
    hid: Vec<f64>,
    d_hid: Vec<f64>,
    /// Scaled feature rows for the batch GEMM path.
    xs: FeatureMatrix,
    /// Hidden activations for the batch GEMM path.
    hid_m: FeatureMatrix,
    /// Quantized input rows for the int8 path.
    qx: Vec<i8>,
    /// Quantized hidden activations for the int8 path.
    qh: Vec<i8>,
    /// i32 GEMM accumulators for the int8 path.
    acc: Vec<i32>,
}

/// The acoustic model: `logits = W2·relu(W1·scale(x) + b1) + b2`.
#[derive(Debug, Clone)]
pub struct AcousticModel {
    /// Row-major `[hidden × dim]`.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// Row-major `[N_CLASSES × hidden]`.
    w2: Vec<f64>,
    b2: Vec<f64>,
    scaler: FeatureScaler,
    dim: usize,
    hidden: usize,
}

impl AcousticModel {
    /// Trains a model on `features` with per-frame `labels` (phoneme class
    /// indices).
    ///
    /// # Panics
    ///
    /// Panics if the data is empty, ragged, or labels are out of range.
    pub fn train(features: &FeatureMatrix, labels: &[usize], cfg: &TrainConfig) -> AcousticModel {
        assert_eq!(features.n_frames(), labels.len(), "feature/label count mismatch");
        assert!(!features.is_empty(), "empty training set");
        assert!(labels.iter().all(|&l| l < N_CLASSES), "label out of range");
        assert!(cfg.hidden > 0, "hidden width must be positive");
        let dim = features.dim();
        let h = cfg.hidden;
        let scaler = FeatureScaler::fit(features);
        let scaled = features.map_rows(dim, |r, out| scaler.transform_into(r, out));

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // He-style initialisation.
        let s1 = (2.0 / dim as f64).sqrt();
        let s2 = (2.0 / h as f64).sqrt();
        let mut w1: Vec<f64> = (0..h * dim).map(|_| rng.gen_range(-s1..s1)).collect();
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<f64> = (0..N_CLASSES * h).map(|_| rng.gen_range(-s2..s2)).collect();
        let mut b2 = vec![0.0; N_CLASSES];

        let mut order: Vec<usize> = (0..scaled.n_frames()).collect();
        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(cfg.batch) {
                let mut gw1 = vec![0.0; h * dim];
                let mut gb1 = vec![0.0; h];
                let mut gw2 = vec![0.0; N_CLASSES * h];
                let mut gb2 = vec![0.0; N_CLASSES];
                for &i in chunk {
                    let x = scaled.row(i);
                    // Forward.
                    let mut hid = vec![0.0; h];
                    for j in 0..h {
                        let row = &w1[j * dim..(j + 1) * dim];
                        hid[j] = (b1[j] + kernel::dot(row, x)).max(0.0);
                    }
                    let mut logits = vec![0.0; N_CLASSES];
                    for c in 0..N_CLASSES {
                        logits[c] = b2[c] + kernel::dot(&w2[c * h..(c + 1) * h], &hid);
                    }
                    let probs = softmax(&logits);
                    // Backward.
                    let mut d_hid = vec![0.0; h];
                    for c in 0..N_CLASSES {
                        let err = probs[c] - f64::from(c == labels[i]);
                        gb2[c] += err;
                        kernel::axpy(&mut gw2[c * h..(c + 1) * h], err, &hid);
                        kernel::axpy(&mut d_hid, err, &w2[c * h..(c + 1) * h]);
                    }
                    for j in 0..h {
                        if hid[j] <= 0.0 {
                            continue; // ReLU gate
                        }
                        gb1[j] += d_hid[j];
                        kernel::axpy(&mut gw1[j * dim..(j + 1) * dim], d_hid[j], x);
                    }
                }
                let scale = cfg.learning_rate / chunk.len() as f64;
                let decay = cfg.learning_rate * cfg.l2;
                for (w, g) in w1.iter_mut().zip(&gw1) {
                    *w -= scale * g + decay * *w;
                }
                for (b, g) in b1.iter_mut().zip(&gb1) {
                    *b -= scale * g;
                }
                for (w, g) in w2.iter_mut().zip(&gw2) {
                    *w -= scale * g + decay * *w;
                }
                for (b, g) in b2.iter_mut().zip(&gb2) {
                    *b -= scale * g;
                }
            }
        }
        AcousticModel { w1, b1, w2, b2, scaler, dim, hidden: h }
    }

    /// Input feature dimensionality (before standardisation).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Scales `row` into `scratch.x` and fills `scratch.hid` with the ReLU
    /// hidden activations.
    fn forward_hidden(&self, row: &[f64], scratch: &mut AmScratch) {
        scratch.x.resize(self.dim, 0.0);
        self.scaler.transform_into(row, &mut scratch.x);
        scratch.hid.resize(self.hidden, 0.0);
        kernel::gemv(&self.w1, self.dim, &scratch.x, &mut scratch.hid);
        for (h, &b) in scratch.hid.iter_mut().zip(&self.b1) {
            *h = (*h + b).max(0.0);
        }
    }

    /// Logits for one raw (unscaled) feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn logits(&self, row: &[f64]) -> Vec<f64> {
        let mut scratch = AmScratch::default();
        let mut out = vec![0.0; N_CLASSES];
        self.logits_into(row, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`logits`](Self::logits): writes the `N_CLASSES`
    /// logits for one raw feature row into `out`, reusing `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()` or `out.len() != N_CLASSES`.
    pub fn logits_into(&self, row: &[f64], scratch: &mut AmScratch, out: &mut [f64]) {
        assert_eq!(row.len(), self.dim, "feature dimension mismatch");
        assert_eq!(out.len(), N_CLASSES, "logit output length");
        self.forward_hidden(row, scratch);
        kernel::gemv(&self.w2, self.hidden, &scratch.hid, out);
        for (o, &b) in out.iter_mut().zip(&self.b2) {
            *o += b;
        }
    }

    /// Logit matrix (`n_frames × N_CLASSES`) for a whole feature matrix.
    pub fn logit_matrix(&self, feats: &FeatureMatrix) -> FeatureMatrix {
        let mut scratch = AmScratch::default();
        let mut out = FeatureMatrix::default();
        self.logit_matrix_into(feats, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`logit_matrix`](Self::logit_matrix): fills `out`
    /// with per-frame logits, reusing `scratch` across rows.
    ///
    /// Batched form of [`logits_into`](Self::logits_into): two
    /// cache-blocked `kernel::gemm_nt` calls over all frames at once.
    /// `gemm_nt` never splits the inner dimension, so every row of the
    /// result is bit-identical to the per-row path.
    ///
    /// # Panics
    ///
    /// Panics if `feats.dim() != self.dim()` (for a non-empty matrix).
    pub fn logit_matrix_into(
        &self,
        feats: &FeatureMatrix,
        scratch: &mut AmScratch,
        out: &mut FeatureMatrix,
    ) {
        let n = feats.n_frames();
        out.reset(n, N_CLASSES);
        if n == 0 {
            return;
        }
        assert_eq!(feats.dim(), self.dim, "feature dimension mismatch");
        scratch.xs.reset(n, self.dim);
        for (t, row) in feats.rows().enumerate() {
            self.scaler.transform_into(row, scratch.xs.row_mut(t));
        }
        scratch.hid_m.reset(n, self.hidden);
        kernel::gemm_nt(
            scratch.xs.as_slice(),
            n,
            &self.w1,
            self.hidden,
            self.dim,
            scratch.hid_m.as_mut_slice(),
        );
        for t in 0..n {
            for (h, &b) in scratch.hid_m.row_mut(t).iter_mut().zip(&self.b1) {
                *h = (*h + b).max(0.0);
            }
        }
        kernel::gemm_nt(
            scratch.hid_m.as_slice(),
            n,
            &self.w2,
            N_CLASSES,
            self.hidden,
            out.as_mut_slice(),
        );
        for t in 0..n {
            for (o, &b) in out.row_mut(t).iter_mut().zip(&self.b2) {
                *o += b;
            }
        }
    }

    /// Most likely class per frame.
    pub fn predict(&self, feats: &FeatureMatrix) -> Vec<usize> {
        let mut scratch = AmScratch::default();
        let mut logits = vec![0.0; N_CLASSES];
        feats
            .rows()
            .map(|r| {
                self.logits_into(r, &mut scratch, &mut logits);
                argmax(&logits)
            })
            .collect()
    }

    /// Fraction of frames whose argmax matches `labels`.
    pub fn frame_accuracy(&self, features: &FeatureMatrix, labels: &[usize]) -> f64 {
        assert_eq!(features.n_frames(), labels.len());
        if features.is_empty() {
            return 0.0;
        }
        let correct = self.predict(features).iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / features.n_frames() as f64
    }

    /// Backward through scaler + MLP: gradient w.r.t. the raw feature row
    /// `x_raw` given a gradient w.r.t. the logits.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward_to_features(&self, x_raw: &[f64], d_logits: &[f64]) -> Vec<f64> {
        let mut scratch = AmScratch::default();
        let mut out = vec![0.0; self.dim];
        self.backward_to_features_into(x_raw, d_logits, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`backward_to_features`](Self::backward_to_features):
    /// writes the raw-feature gradient into `out`, reusing `scratch`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward_to_features_into(
        &self,
        x_raw: &[f64],
        d_logits: &[f64],
        scratch: &mut AmScratch,
        out: &mut [f64],
    ) {
        assert_eq!(d_logits.len(), N_CLASSES, "logit gradient length");
        assert_eq!(x_raw.len(), self.dim, "feature dimension mismatch");
        assert_eq!(out.len(), self.dim, "feature gradient length");
        self.forward_hidden(x_raw, scratch);
        // d_hid = W2^T d_logits, gated by ReLU.
        scratch.d_hid.clear();
        scratch.d_hid.resize(self.hidden, 0.0);
        for (c, &g) in d_logits.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            kernel::axpy(&mut scratch.d_hid, g, &self.w2[c * self.hidden..(c + 1) * self.hidden]);
        }
        out.fill(0.0);
        for j in 0..self.hidden {
            if scratch.hid[j] <= 0.0 || scratch.d_hid[j] == 0.0 {
                continue;
            }
            kernel::axpy(out, scratch.d_hid[j], &self.w1[j * self.dim..(j + 1) * self.dim]);
        }
        self.scaler.backward_in_place(out);
    }
}

/// An int8 precision variant of [`AcousticModel`]: the same scaler and
/// biases, but both weight matrices quantized to symmetric i8 codes and
/// both layer inputs quantized through calibrated per-layer scales.
///
/// The forward pass mirrors [`AcousticModel::logit_matrix_into`] with
/// the two f64 GEMMs swapped for [`kernel::gemm_nt_i8`]: quantize the
/// scaled inputs, accumulate raw i8 products in i32, then dequantize
/// with one multiply per output (`acc · w_scale · in_scale`) before the
/// bias and ReLU run in f64 as usual. Quantization noise makes this a
/// *cheap ensemble member* in the PVP sense — its decision boundaries
/// differ from the f64 model's in exactly the way precision diversity
/// predicts, while transcripts on benign audio stay overwhelmingly in
/// agreement.
///
/// Only the forward path exists in int8; attack gradients always flow
/// through the f64 weights of the model this one was quantized from.
#[derive(Debug, Clone)]
pub struct QuantizedAcousticModel {
    /// Row-major `[hidden × dim]` i8 codes with per-row scales.
    w1: QuantizedMatrix,
    b1: Vec<f64>,
    /// Row-major `[N_CLASSES × hidden]` i8 codes with per-row scales.
    w2: QuantizedMatrix,
    b2: Vec<f64>,
    /// Calibrated scale for the standardised input features.
    in_q: InputQuantizer,
    /// Calibrated scale for the ReLU hidden activations.
    hid_q: InputQuantizer,
    scaler: FeatureScaler,
    dim: usize,
    hidden: usize,
}

impl QuantizedAcousticModel {
    /// Quantizes `am` post-training, calibrating both activation scales
    /// on `calibration` (benign feature rows).
    ///
    /// The hidden-layer scale is calibrated on the activations the
    /// *quantized* first layer produces — not the f64 model's — so the
    /// runtime distribution is exactly the calibrated one.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty, has the wrong dimensionality,
    /// or yields no finite activations.
    pub fn quantize(am: &AcousticModel, calibration: &FeatureMatrix) -> QuantizedAcousticModel {
        assert!(!calibration.is_empty(), "cannot calibrate on an empty sample");
        assert_eq!(calibration.dim(), am.dim, "calibration dimension mismatch");
        let w1 = QuantizedMatrix::quantize(&am.w1, am.hidden, am.dim);
        let w2 = QuantizedMatrix::quantize(&am.w2, N_CLASSES, am.hidden);

        let mut x = vec![0.0; am.dim];
        let mut cal_in = Calibration::new();
        for row in calibration.rows() {
            am.scaler.transform_into(row, &mut x);
            cal_in.observe(&x);
        }
        let in_q = cal_in.input_quantizer();

        let mut cal_hid = Calibration::new();
        let mut qx = Vec::new();
        let mut acc = vec![0i32; am.hidden];
        let mut hid = vec![0.0; am.hidden];
        for row in calibration.rows() {
            am.scaler.transform_into(row, &mut x);
            in_q.quantize_into(&x, &mut qx);
            kernel::gemm_nt_i8(&qx, 1, w1.data(), am.hidden, am.dim, &mut acc);
            for ((h, &a), (&s, &b)) in hid.iter_mut().zip(&acc).zip(w1.scales().iter().zip(&am.b1))
            {
                *h = (f64::from(a) * s * in_q.scale() + b).max(0.0);
            }
            cal_hid.observe(&hid);
        }
        let hid_q = cal_hid.input_quantizer();

        QuantizedAcousticModel {
            w1,
            b1: am.b1.clone(),
            w2,
            b2: am.b2.clone(),
            in_q,
            hid_q,
            scaler: am.scaler.clone(),
            dim: am.dim,
            hidden: am.hidden,
        }
    }

    /// Input feature dimensionality (before standardisation).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Logits for one raw feature row (convenience; the hot path is
    /// [`logit_matrix_into`](Self::logit_matrix_into)).
    pub fn logits(&self, row: &[f64]) -> Vec<f64> {
        let mut feats = FeatureMatrix::zeros(0, row.len());
        feats.push_row(row);
        let mut out = FeatureMatrix::default();
        self.logit_matrix_into(&feats, &mut AmScratch::default(), &mut out);
        out.row(0).to_vec()
    }

    /// Int8 counterpart of [`AcousticModel::logit_matrix_into`]: fills
    /// `out` with per-frame logits, reusing `scratch` across calls.
    ///
    /// # Panics
    ///
    /// Panics if `feats.dim() != self.dim()` (for a non-empty matrix).
    pub fn logit_matrix_into(
        &self,
        feats: &FeatureMatrix,
        scratch: &mut AmScratch,
        out: &mut FeatureMatrix,
    ) {
        let n = feats.n_frames();
        out.reset(n, N_CLASSES);
        if n == 0 {
            return;
        }
        assert_eq!(feats.dim(), self.dim, "feature dimension mismatch");
        scratch.xs.reset(n, self.dim);
        for (t, row) in feats.rows().enumerate() {
            self.scaler.transform_into(row, scratch.xs.row_mut(t));
        }
        self.in_q.quantize_into(scratch.xs.as_slice(), &mut scratch.qx);
        scratch.acc.clear();
        scratch.acc.resize(n * self.hidden, 0);
        kernel::gemm_nt_i8(&scratch.qx, n, self.w1.data(), self.hidden, self.dim, &mut scratch.acc);
        scratch.hid_m.reset(n, self.hidden);
        let d1 = self.in_q.scale();
        for t in 0..n {
            let acc_row = &scratch.acc[t * self.hidden..(t + 1) * self.hidden];
            for ((h, &a), (&s, &b)) in scratch
                .hid_m
                .row_mut(t)
                .iter_mut()
                .zip(acc_row)
                .zip(self.w1.scales().iter().zip(&self.b1))
            {
                *h = (f64::from(a) * s * d1 + b).max(0.0);
            }
        }
        self.hid_q.quantize_into(scratch.hid_m.as_slice(), &mut scratch.qh);
        scratch.acc.clear();
        scratch.acc.resize(n * N_CLASSES, 0);
        kernel::gemm_nt_i8(
            &scratch.qh,
            n,
            self.w2.data(),
            N_CLASSES,
            self.hidden,
            &mut scratch.acc,
        );
        let d2 = self.hid_q.scale();
        for t in 0..n {
            let acc_row = &scratch.acc[t * N_CLASSES..(t + 1) * N_CLASSES];
            for ((o, &a), (&s, &b)) in
                out.row_mut(t).iter_mut().zip(acc_row).zip(self.w2.scales().iter().zip(&self.b2))
            {
                *o = f64::from(a) * s * d2 + b;
            }
        }
    }

    /// Appends the model to an artifact payload (nested inside the
    /// quantized-pipeline artifact, like the config records).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.dim);
        enc.put_usize(self.hidden);
        self.w1.encode(enc);
        enc.put_f64s(&self.b1);
        self.w2.encode(enc);
        enc.put_f64s(&self.b2);
        self.in_q.encode(enc);
        self.hid_q.encode(enc);
        self.scaler.encode(enc);
    }

    /// Reads a model written by [`encode`](Self::encode), refusing any
    /// internally inconsistent shape.
    pub fn decode(dec: &mut FieldDecoder<'_>) -> Result<QuantizedAcousticModel, ArtifactError> {
        let dim = dec.usize()?;
        let hidden = dec.usize()?;
        let w1 = QuantizedMatrix::decode(dec)?;
        let b1 = dec.f64s()?;
        let w2 = QuantizedMatrix::decode(dec)?;
        let b2 = dec.f64s()?;
        let in_q = InputQuantizer::decode(dec)?;
        let hid_q = InputQuantizer::decode(dec)?;
        let scaler = FeatureScaler::decode(dec)?;
        let shape_ok = hidden > 0
            && w1.n_rows() == hidden
            && w1.n_cols() == dim
            && b1.len() == hidden
            && w2.n_rows() == N_CLASSES
            && w2.n_cols() == hidden
            && b2.len() == N_CLASSES
            && scaler.dim() == dim;
        if !shape_ok {
            return Err(ArtifactError::SchemaMismatch(format!(
                "quantized acoustic model shapes inconsistent with dim {dim}, \
                 hidden {hidden}, {N_CLASSES} classes"
            )));
        }
        Ok(QuantizedAcousticModel { w1, b1, w2, b2, in_q, hid_q, scaler, dim, hidden })
    }
}

impl Persist for FeatureScaler {
    const KIND: ArtifactKind = ArtifactKind::FEATURE_SCALER;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64s(&self.mean);
        enc.put_f64s(&self.inv_std);
    }

    fn decode(dec: &mut FieldDecoder<'_>) -> Result<Self, ArtifactError> {
        let mean = dec.f64s()?;
        let inv_std = dec.f64s()?;
        if mean.len() != inv_std.len() {
            return Err(ArtifactError::SchemaMismatch(format!(
                "scaler mean dim {} != inv_std dim {}",
                mean.len(),
                inv_std.len()
            )));
        }
        Ok(FeatureScaler { mean, inv_std })
    }
}

impl Persist for AcousticModel {
    const KIND: ArtifactKind = ArtifactKind::ACOUSTIC_MODEL;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.dim);
        enc.put_usize(self.hidden);
        enc.put_f64s(&self.w1);
        enc.put_f64s(&self.b1);
        enc.put_f64s(&self.w2);
        enc.put_f64s(&self.b2);
        self.scaler.encode(enc);
    }

    fn decode(dec: &mut FieldDecoder<'_>) -> Result<Self, ArtifactError> {
        let dim = dec.usize()?;
        let hidden = dec.usize()?;
        let w1 = dec.f64s()?;
        let b1 = dec.f64s()?;
        let w2 = dec.f64s()?;
        let b2 = dec.f64s()?;
        let scaler = FeatureScaler::decode(dec)?;
        let shape_ok = hidden > 0
            && hidden.checked_mul(dim) == Some(w1.len())
            && b1.len() == hidden
            && N_CLASSES.checked_mul(hidden) == Some(w2.len())
            && b2.len() == N_CLASSES
            && scaler.dim() == dim;
        if !shape_ok {
            return Err(ArtifactError::SchemaMismatch(format!(
                "acoustic model shapes inconsistent with dim {dim}, hidden {hidden}, \
                 {N_CLASSES} classes"
            )));
        }
        Ok(AcousticModel { w1, b1, w2, b2, scaler, dim, hidden })
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Allocation-free [`softmax`]: writes the probabilities into `out`.
///
/// # Panics
///
/// Panics if `out.len() != logits.len()`.
pub fn softmax_into(logits: &[f64], out: &mut [f64]) {
    assert_eq!(out.len(), logits.len(), "softmax output length");
    let m = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut z = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        *o = (l - m).exp();
        z += *o;
    }
    for o in out.iter_mut() {
        *o /= z;
    }
}

/// Index of the largest element. `total_cmp` keeps a NaN logit from
/// panicking mid-decode (it ranks above every finite value and wins,
/// which downstream decoding treats like any other class choice).
pub fn argmax(v: &[f64]) -> usize {
    // mvp-lint: allow(panic-path) -- callers pass N_CLASSES-wide logit rows; an empty row is a construction bug, not request input
    v.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).expect("empty logits")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a linearly separable 3-class toy problem on 4-dim features.
    fn toy_data(n_per_class: usize, seed: u64) -> (FeatureMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[3.0, 0.0, 0.0, 1.0], [0.0, 3.0, 1.0, 0.0], [-3.0, -3.0, 0.0, 0.0]];
        let mut feats = FeatureMatrix::zeros(0, 4);
        let mut labels = Vec::new();
        let mut row = [0.0; 4];
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                for (r, &m) in row.iter_mut().zip(center) {
                    *r = m + rng.gen_range(-0.5..0.5);
                }
                feats.push_row(&row);
                labels.push(c);
            }
        }
        (feats, labels)
    }

    #[test]
    fn learns_separable_classes() {
        let (feats, labels) = toy_data(60, 3);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let acc = am.frame_accuracy(&feats, &labels);
        assert!(acc > 0.98, "train accuracy {acc}");
        let (test_f, test_l) = toy_data(20, 99);
        let test_acc = am.frame_accuracy(&test_f, &test_l);
        assert!(test_acc > 0.95, "test accuracy {test_acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let (feats, labels) = toy_data(20, 3);
        let a = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let b = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        assert_eq!(a.logits(feats.row(0)), b.logits(feats.row(0)));
    }

    #[test]
    fn different_seeds_give_different_models() {
        let (feats, labels) = toy_data(20, 3);
        let a = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let b = AcousticModel::train(
            &feats,
            &labels,
            &TrainConfig { seed: 77, ..TrainConfig::default() },
        );
        assert_ne!(a.logits(feats.row(0)), b.logits(feats.row(0)));
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0, -1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0] && p[0] > p[3]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (feats, labels) = toy_data(20, 3);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let x = feats.row(0).to_vec();
        let mut d_logits = vec![0.0; N_CLASSES];
        d_logits[0] = 1.0;
        d_logits[5] = -2.0;
        let grad = am.backward_to_features(&x, &d_logits);
        let f = |x: &[f64]| {
            let l = am.logits(x);
            l[0] - 2.0 * l[5]
        };
        let eps = 1e-6;
        for t in 0..x.len() {
            let mut hi = x.clone();
            hi[t] += eps;
            let mut lo = x.clone();
            lo[t] -= eps;
            let fd = (f(&hi) - f(&lo)) / (2.0 * eps);
            // ReLU kinks can make a coordinate locally non-smooth; allow a
            // loose tolerance there but demand close agreement on average.
            assert!((grad[t] - fd).abs() < 1e-4, "dim {t}: {} vs {fd}", grad[t]);
        }
    }

    #[test]
    fn hidden_width_configurable() {
        let (feats, labels) = toy_data(10, 3);
        let am = AcousticModel::train(
            &feats,
            &labels,
            &TrainConfig { hidden: 7, ..TrainConfig::default() },
        );
        assert_eq!(am.hidden(), 7);
        assert_eq!(am.logits(feats.row(0)).len(), N_CLASSES);
    }

    #[test]
    fn logit_matrix_scratch_path_matches_per_row() {
        let (feats, labels) = toy_data(10, 3);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let m = am.logit_matrix(&feats);
        assert_eq!(m.n_frames(), feats.n_frames());
        assert_eq!(m.dim(), N_CLASSES);
        let mut scratch = AmScratch::default();
        let mut reused = FeatureMatrix::default();
        am.logit_matrix_into(&feats, &mut scratch, &mut reused);
        assert_eq!(reused, m);
        for t in 0..feats.n_frames() {
            assert_eq!(m.row(t), am.logits(feats.row(t)).as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn ragged_input_rejected() {
        let am = {
            let (feats, labels) = toy_data(5, 3);
            AcousticModel::train(&feats, &labels, &TrainConfig::default())
        };
        am.logits(&[1.0, 2.0]);
    }

    #[test]
    fn persisted_model_reproduces_logits_bit_exactly() {
        let (feats, labels) = toy_data(20, 3);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let mut bytes = Vec::new();
        am.write_to(&mut bytes).unwrap();
        let back = AcousticModel::read_from(&bytes[..]).unwrap();
        assert_eq!(back.dim(), am.dim());
        assert_eq!(back.hidden(), am.hidden());
        for t in 0..feats.n_frames() {
            assert_eq!(back.logits(feats.row(t)), am.logits(feats.row(t)));
        }
    }

    #[test]
    fn inconsistent_model_shapes_are_refused() {
        let (feats, labels) = toy_data(10, 3);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let mut enc = Encoder::new();
        am.encode(&mut enc);
        // Re-frame the valid payload with a lying hidden width: the checksum
        // passes, so the shape validation must catch it.
        let mut payload = enc.as_bytes().to_vec();
        payload[8..16].copy_from_slice(&(am.hidden() as u64 + 1).to_le_bytes());
        let mut bytes = Vec::new();
        mvp_artifact::write_artifact(
            &mut bytes,
            AcousticModel::KIND,
            AcousticModel::SCHEMA_VERSION,
            &payload,
        )
        .unwrap();
        assert!(matches!(
            AcousticModel::read_from(&bytes[..]),
            Err(ArtifactError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn quantized_model_agrees_with_f64_on_most_frames() {
        let (feats, labels) = toy_data(60, 3);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let qam = QuantizedAcousticModel::quantize(&am, &feats);
        assert_eq!(qam.dim(), am.dim());
        assert_eq!(qam.hidden(), am.hidden());
        let mut scratch = AmScratch::default();
        let mut q_logits = FeatureMatrix::default();
        qam.logit_matrix_into(&feats, &mut scratch, &mut q_logits);
        let f_logits = am.logit_matrix(&feats);
        let agree = (0..feats.n_frames())
            .filter(|&t| argmax(q_logits.row(t)) == argmax(f_logits.row(t)))
            .count();
        let rate = agree as f64 / feats.n_frames() as f64;
        assert!(rate > 0.95, "int8/f64 frame agreement {rate}");
    }

    #[test]
    fn quantized_batch_path_matches_per_row() {
        let (feats, labels) = toy_data(15, 5);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let qam = QuantizedAcousticModel::quantize(&am, &feats);
        let mut scratch = AmScratch::default();
        let mut batch = FeatureMatrix::default();
        qam.logit_matrix_into(&feats, &mut scratch, &mut batch);
        for t in 0..feats.n_frames() {
            assert_eq!(batch.row(t), qam.logits(feats.row(t)).as_slice(), "frame {t}");
        }
    }

    #[test]
    fn quantized_model_codec_round_trips_bit_exactly() {
        let (feats, labels) = toy_data(15, 7);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let qam = QuantizedAcousticModel::quantize(&am, &feats);
        let mut enc = Encoder::new();
        qam.encode(&mut enc);
        let mut dec = FieldDecoder::new(enc.as_bytes());
        let back = QuantizedAcousticModel::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        for t in 0..feats.n_frames() {
            assert_eq!(back.logits(feats.row(t)), qam.logits(feats.row(t)));
        }
    }

    #[test]
    fn quantized_model_decode_refuses_inconsistent_shapes() {
        let (feats, labels) = toy_data(10, 7);
        let am = AcousticModel::train(&feats, &labels, &TrainConfig::default());
        let qam = QuantizedAcousticModel::quantize(&am, &feats);
        let mut enc = Encoder::new();
        qam.encode(&mut enc);
        // Lie about the hidden width (second u64 of the record): every
        // dependent shape check must now fail loudly, not misindex.
        let mut payload = enc.as_bytes().to_vec();
        payload[8..16].copy_from_slice(&(qam.hidden() as u64 + 1).to_le_bytes());
        let mut dec = FieldDecoder::new(&payload);
        assert!(matches!(
            QuantizedAcousticModel::decode(&mut dec),
            Err(ArtifactError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn scaler_standardises() {
        let rows =
            FeatureMatrix::from_rows(vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]], 2);
        let sc = FeatureScaler::fit(&rows);
        let t = sc.transform(&[3.0, 30.0]);
        assert!(t.iter().all(|v| v.abs() < 1e-9)); // the mean maps to 0
        let hi = sc.transform(&[5.0, 50.0]);
        assert!((hi[0] - hi[1]).abs() < 1e-9); // equal z-scores
    }
}
