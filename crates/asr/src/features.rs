//! Per-profile feature front end: MFCC + context stacking + subsampling.
//!
//! The stacked representation feeds each frame's MFCCs together with `c`
//! context frames on either side to the acoustic model (GCS-like profiles
//! use wide context, mimicking recurrent memory). Subsampling emits every
//! `s`-th stacked frame (the Kaldi `--frame-subsampling-factor` analogue the
//! paper perturbs in Section III). Both operations are linear, so the
//! backward pass composes exactly with the MFCC adjoint.

use mvp_audio::Waveform;
use mvp_dsp::mfcc::{FeatureMatrix, MfccCache, MfccConfig, MfccExtractor, MfccScratch};

/// Front-end configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEndConfig {
    /// The MFCC pipeline settings.
    pub mfcc: MfccConfig,
    /// Context frames appended on each side (stacked dim = `(2c+1)·n_cepstra`).
    pub context: usize,
    /// Keep every `subsample`-th stacked frame (`1` keeps all).
    pub subsample: usize,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig { mfcc: MfccConfig::default(), context: 1, subsample: 1 }
    }
}

/// Intermediates for the backward pass through the front end.
#[derive(Debug)]
pub struct FrontEndCache {
    mfcc_cache: MfccCache,
    n_mfcc_frames: usize,
}

/// Reusable workspace for [`FeatureFrontEnd::features_into`]: the MFCC
/// scratch plan plus the intermediate (un-stacked) MFCC matrix.
#[derive(Debug, Clone, Default)]
pub struct FrontEndScratch {
    mfcc: MfccScratch,
    mfcc_mat: FeatureMatrix,
}

/// The feature front end of one ASR profile.
#[derive(Debug, Clone)]
pub struct FeatureFrontEnd {
    extractor: MfccExtractor,
    context: usize,
    subsample: usize,
}

impl FeatureFrontEnd {
    /// Builds the front end.
    ///
    /// # Panics
    ///
    /// Panics if `subsample == 0` or the MFCC config is invalid.
    pub fn new(cfg: FrontEndConfig) -> FeatureFrontEnd {
        assert!(cfg.subsample > 0, "subsample factor must be positive");
        FeatureFrontEnd {
            extractor: MfccExtractor::new(cfg.mfcc),
            context: cfg.context,
            subsample: cfg.subsample,
        }
    }

    /// Dimensionality of each stacked feature row.
    pub fn dim(&self) -> usize {
        (2 * self.context + 1) * self.extractor.config().n_cepstra
    }

    /// The underlying MFCC configuration.
    pub fn mfcc_config(&self) -> &MfccConfig {
        self.extractor.config()
    }

    /// The subsampling factor.
    pub fn subsample(&self) -> usize {
        self.subsample
    }

    /// The full configuration this front end was built from
    /// ([`FeatureFrontEnd::new`] on the result reproduces it exactly).
    pub fn config(&self) -> FrontEndConfig {
        FrontEndConfig {
            // mvp-lint: allow(hot-path-alloc) -- one-shot persistence snapshot; reached only through a name-collision with MfccExtractor::config
            mfcc: self.extractor.config().clone(),
            context: self.context,
            subsample: self.subsample,
        }
    }

    /// Sample index at the centre of stacked frame `row` (for aligning
    /// frame labels with synthesizer alignments).
    pub fn frame_center_sample(&self, row: usize) -> usize {
        let cfg = self.extractor.config();
        row * self.subsample * cfg.hop + cfg.frame_len / 2
    }

    /// Extracts stacked features for `wave`.
    pub fn features(&self, wave: &Waveform) -> FeatureMatrix {
        self.features_with_cache(wave).0
    }

    /// Extracts stacked features from pre-widened samples.
    pub fn features_from_samples(&self, samples: &[f64]) -> FeatureMatrix {
        let mut scratch = FrontEndScratch::default();
        let mut out = FeatureMatrix::default();
        self.features_into(samples, &mut scratch, &mut out);
        out
    }

    /// Extracts stacked features into `out`, reusing `scratch` — the batch
    /// path uses this so repeated extraction performs no steady-state
    /// allocation (see `TrainedAsr::transcribe_batch_with`).
    pub fn features_into(
        &self,
        samples: &[f64],
        scratch: &mut FrontEndScratch,
        out: &mut FeatureMatrix,
    ) {
        self.extractor.extract_into(samples, &mut scratch.mfcc, &mut scratch.mfcc_mat);
        self.stack_into(&scratch.mfcc_mat, out);
    }

    /// Extracts stacked features plus the cache needed by
    /// [`backward`](Self::backward).
    pub fn features_with_cache(&self, wave: &Waveform) -> (FeatureMatrix, FrontEndCache) {
        let samples = wave.to_f64();
        let (mfcc, cache) = self.extractor.extract_with_cache(&samples);
        let stacked = self.stack(&mfcc);
        (stacked, FrontEndCache { mfcc_cache: cache, n_mfcc_frames: mfcc.n_frames() })
    }

    fn stack(&self, mfcc: &FeatureMatrix) -> FeatureMatrix {
        let mut out = FeatureMatrix::default();
        self.stack_into(mfcc, &mut out);
        out
    }

    /// Context-stacks and subsamples `mfcc` into `out`, writing each row in
    /// place.
    fn stack_into(&self, mfcc: &FeatureMatrix, out: &mut FeatureMatrix) {
        let n = mfcc.n_frames();
        let dim = (2 * self.context + 1) * mfcc.dim();
        out.reset(n.div_ceil(self.subsample), dim);
        for (i, f) in (0..n).step_by(self.subsample).enumerate() {
            self.stack_row(mfcc, f, n, out.row_mut(i));
        }
    }

    /// Writes the stacked row centred on MFCC frame `f`, clamping context
    /// reads to `[0, n_limit)`. The streaming path only emits a row once
    /// frame `f + context` exists, so its early rows see the same clamp the
    /// batch pass applies against the final frame count.
    fn stack_row(&self, mfcc: &FeatureMatrix, f: usize, n_limit: usize, row: &mut [f64]) {
        let d = mfcc.dim();
        let c = self.context as isize;
        for (oi, o) in (-c..=c).enumerate() {
            let src = (f as isize + o).clamp(0, n_limit as isize - 1) as usize;
            row[oi * d..(oi + 1) * d].copy_from_slice(mfcc.row(src));
        }
    }

    /// Backpropagates a gradient over the stacked features to a gradient
    /// over the waveform samples.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch with the cached forward pass.
    pub fn backward(&self, cache: &FrontEndCache, d_stacked: &FeatureMatrix) -> Vec<f64> {
        let d = self.extractor.config().n_cepstra;
        let n = cache.n_mfcc_frames;
        assert_eq!(d_stacked.dim(), self.dim(), "stacked dim mismatch");
        assert_eq!(
            d_stacked.n_frames(),
            n.div_ceil(self.subsample),
            "stacked frame count mismatch"
        );
        let c = self.context as isize;
        let mut d_mfcc = FeatureMatrix::zeros(n, d);
        for (i, f) in (0..n).step_by(self.subsample).enumerate() {
            let row = d_stacked.row(i);
            for (oi, o) in (-c..=c).enumerate() {
                let src = (f as isize + o).clamp(0, n as isize - 1) as usize;
                let dst = &mut d_mfcc.row_mut(src)[..d];
                for (dv, &g) in dst.iter_mut().zip(&row[oi * d..(oi + 1) * d]) {
                    *dv += g;
                }
            }
        }
        self.extractor.backward(&cache.mfcc_cache, &d_mfcc)
    }
}

/// Incremental face of [`FeatureFrontEnd`]: accepts arbitrary sample
/// chunks and emits each context-stacked, subsampled feature row as soon
/// as its rightmost context frame exists.
///
/// The boundary clamp makes the right edge depend on the final frame
/// count, so stacked row `i` (centre MFCC frame `f = i·subsample`) is
/// emitted once MFCC frame `f + context` is complete; [`finish`]
/// (Self::finish) emits the clamped remainder. Output across any chunking
/// is byte-identical to [`FeatureFrontEnd::features_into`].
#[derive(Debug, Clone, Default)]
pub struct FrontEndStream {
    mfcc_stream: mvp_dsp::StreamingMfcc,
    /// Every MFCC row of the utterance so far — the context stacker needs
    /// look-back, and the matrix is bounded by utterance length.
    mfcc_mat: FeatureMatrix,
    /// Next stacked output row to emit.
    next_out: usize,
    row: Vec<f64>,
}

impl FrontEndStream {
    /// Clears carried state for a new utterance, keeping buffer capacity.
    pub fn reset(&mut self) {
        self.mfcc_stream.reset();
        self.mfcc_mat.reset(0, 0);
        self.next_out = 0;
    }

    /// Number of stacked feature rows emitted since the last reset.
    pub fn rows_emitted(&self) -> usize {
        self.next_out
    }

    /// Feeds `chunk` (widened samples) and appends every newly completed
    /// stacked row to `out` via [`FeatureMatrix::push_row`].
    pub fn push(&mut self, fe: &FeatureFrontEnd, chunk: &[f64], out: &mut FeatureMatrix) {
        self.mfcc_stream.push(&fe.extractor, chunk, &mut self.mfcc_mat);
        self.row.resize(fe.dim(), 0.0);
        let n = self.mfcc_mat.n_frames();
        loop {
            let f = self.next_out * fe.subsample;
            if f + fe.context + 1 > n {
                break;
            }
            fe.stack_row(&self.mfcc_mat, f, n, &mut self.row);
            out.push_row(&self.row);
            self.next_out += 1;
        }
    }

    /// Flushes the trailing frames (right-edge context clamped against the
    /// final frame count) and resets for the next utterance. `out` then
    /// holds every row [`FeatureFrontEnd::features_into`] would produce for
    /// the concatenated signal.
    pub fn finish(&mut self, fe: &FeatureFrontEnd, out: &mut FeatureMatrix) {
        self.mfcc_stream.finish(&fe.extractor, &mut self.mfcc_mat);
        self.row.resize(fe.dim(), 0.0);
        let n = self.mfcc_mat.n_frames();
        loop {
            let f = self.next_out * fe.subsample;
            if f >= n {
                break;
            }
            fe.stack_row(&self.mfcc_mat, f, n, &mut self.row);
            out.push_row(&self.row);
            self.next_out += 1;
        }
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_dsp::mfcc::MfccConfig;
    use mvp_dsp::Window;

    fn small_frontend(context: usize, subsample: usize) -> FeatureFrontEnd {
        FeatureFrontEnd::new(FrontEndConfig {
            mfcc: MfccConfig {
                sample_rate: 8_000,
                frame_len: 64,
                hop: 32,
                n_fft: 64,
                n_mels: 8,
                n_cepstra: 5,
                window: Window::Hann,
                f_min: 50.0,
                f_max: 4_000.0,
                pre_emphasis: 0.95,
                // Generous floor keeps the log curvature small enough for
                // finite differences to be trustworthy in the grad check.
                log_floor: 1e-3,
            },
            context,
            subsample,
        })
    }

    fn test_wave(n: usize) -> Waveform {
        Waveform::from_samples(
            (0..n)
                .map(|i| {
                    0.4 * (std::f32::consts::TAU * 500.0 * i as f32 / 8000.0).sin()
                        + 0.1 * (std::f32::consts::TAU * 1700.0 * i as f32 / 8000.0).sin()
                        // Broadband floor so no mel bin sits at zero energy.
                        + 0.03 * (((i * 2654435761) % 997) as f32 / 498.5 - 1.0)
                })
                .collect(),
            8_000,
        )
    }

    #[test]
    fn stacked_dim() {
        assert_eq!(small_frontend(0, 1).dim(), 5);
        assert_eq!(small_frontend(2, 1).dim(), 25);
    }

    #[test]
    fn subsampling_reduces_frames() {
        let w = test_wave(640);
        let full = small_frontend(1, 1).features(&w);
        let sub = small_frontend(1, 3).features(&w);
        assert_eq!(sub.n_frames(), full.n_frames().div_ceil(3));
        // Subsampled rows equal the corresponding full rows.
        assert_eq!(sub.row(1), full.row(3));
    }

    #[test]
    fn context_stacks_neighbours() {
        let w = test_wave(640);
        let flat = small_frontend(0, 1).features(&w);
        let ctx = small_frontend(1, 1).features(&w);
        // Middle block of row f is flat row f; left block is row f-1.
        let f = 3;
        assert_eq!(&ctx.row(f)[5..10], flat.row(f));
        assert_eq!(&ctx.row(f)[0..5], flat.row(f - 1));
        // Edge frames replicate the boundary.
        assert_eq!(&ctx.row(0)[0..5], flat.row(0));
    }

    #[test]
    fn gradient_matches_finite_difference_with_context_and_subsample() {
        let fe = small_frontend(1, 2);
        let w = test_wave(400);
        let (feats, cache) = fe.features_with_cache(&w);
        let weight = |i: usize, j: usize| ((i * 13 + j * 7) % 5) as f64 / 2.0 - 1.0;
        let d_rows: Vec<Vec<f64>> = (0..feats.n_frames())
            .map(|i| (0..feats.dim()).map(|j| weight(i, j)).collect())
            .collect();
        let d = FeatureMatrix::from_rows(d_rows, feats.dim());
        let grad = fe.backward(&cache, &d);
        let loss = |samples: &[f32]| -> f64 {
            let f = fe.features(&Waveform::from_samples(samples.to_vec(), 8_000));
            let mut acc = 0.0;
            for i in 0..f.n_frames() {
                for (j, &v) in f.row(i).iter().enumerate() {
                    acc += weight(i, j) * v;
                }
            }
            acc
        };
        let eps = 1e-4f32;
        for &t in &[0usize, 17, 65, 200, 399] {
            let mut hi = w.samples().to_vec();
            hi[t] += eps;
            let mut lo = w.samples().to_vec();
            lo[t] -= eps;
            // Use the realised f32 step, not the nominal one.
            let actual = (hi[t] as f64) - (lo[t] as f64);
            let fd = (loss(&hi) - loss(&lo)) / actual;
            let rel = (grad[t] - fd).abs() / fd.abs().max(1e-3);
            assert!(rel < 2e-2, "sample {t}: analytic {} vs fd {fd}", grad[t]);
        }
    }

    #[test]
    fn features_into_matches_allocating_path() {
        let fe = small_frontend(1, 2);
        let a = test_wave(640);
        let b = test_wave(400);
        let mut scratch = FrontEndScratch::default();
        let mut out = FeatureMatrix::default();
        for w in [&a, &b, &a] {
            fe.features_into(&w.to_f64(), &mut scratch, &mut out);
            assert_eq!(out, fe.features(w));
        }
    }

    #[test]
    fn front_end_stream_matches_batch_across_chunkings() {
        // Every (context, subsample) combination and chunking must agree
        // byte-for-byte with the batch stacker — the right-edge clamp is
        // the part a naive incremental stacker gets wrong.
        let w = test_wave(700);
        let samples: Vec<f64> = w.to_f64();
        for (ctx, sub) in [(0, 1), (1, 1), (2, 3), (3, 2)] {
            let fe = small_frontend(ctx, sub);
            let reference = fe.features_from_samples(&samples);
            for chunk_len in [1usize, 9, 160, samples.len()] {
                let mut st = FrontEndStream::default();
                let mut out = FeatureMatrix::default();
                for chunk in samples.chunks(chunk_len) {
                    st.push(&fe, chunk, &mut out);
                }
                st.finish(&fe, &mut out);
                assert_eq!(out, reference, "ctx={ctx} sub={sub} chunk={chunk_len}");
            }
        }
    }

    #[test]
    fn front_end_stream_reuse_and_empty_utterance() {
        let fe = small_frontend(2, 2);
        let w = test_wave(500);
        let samples = w.to_f64();
        let mut st = FrontEndStream::default();
        let mut out = FeatureMatrix::default();
        // Empty utterance: no rows, and the stream stays reusable.
        st.finish(&fe, &mut out);
        assert_eq!(out.n_frames(), 0);
        for chunk in samples.chunks(37) {
            st.push(&fe, chunk, &mut out);
        }
        st.finish(&fe, &mut out);
        assert_eq!(out, fe.features_from_samples(&samples));
    }

    #[test]
    #[should_panic(expected = "stacked frame count mismatch")]
    fn backward_rejects_truncated_gradient() {
        // A gradient matrix with fewer rows than the forward pass produced
        // must be rejected, not silently truncated.
        let fe = small_frontend(1, 2);
        let w = test_wave(400);
        let (feats, cache) = fe.features_with_cache(&w);
        assert!(feats.n_frames() > 1);
        let short = FeatureMatrix::zeros(feats.n_frames() - 1, feats.dim());
        fe.backward(&cache, &short);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_subsample_rejected() {
        small_frontend(1, 1); // fine
        FeatureFrontEnd::new(FrontEndConfig { subsample: 0, ..FrontEndConfig::default() });
    }
}
