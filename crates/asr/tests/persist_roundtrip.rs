//! End-to-end fidelity of the ASR artifact plane: a persisted pipeline
//! must reproduce the original's transcriptions exactly, and every
//! corruption mode must surface as a typed error — never a panic, never a
//! silently different model.

use std::sync::{Arc, OnceLock};

use mvp_artifact::{ArtifactError, Persist};
use mvp_asr::{AcousticModel, Asr, AsrProfile, TrainedAsr};
use mvp_audio::synth::{SpeakerProfile, Synthesizer};
use mvp_audio::Waveform;
use mvp_phonetics::Lexicon;

/// The KALDI profile is the cheapest to train; one instance serves every
/// test in this binary.
fn asr() -> Arc<TrainedAsr> {
    static ONCE: OnceLock<Arc<TrainedAsr>> = OnceLock::new();
    Arc::clone(ONCE.get_or_init(|| AsrProfile::Kaldi.trained_in(None)))
}

fn artifact_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    asr().write_to(&mut bytes).unwrap();
    bytes
}

fn test_waves() -> Vec<Waveform> {
    let synth = Synthesizer::new(16_000);
    let lex = Lexicon::builtin();
    ["open the door", "turn on the lights", "good morning"]
        .iter()
        .map(|t| synth.synthesize(&lex, t, &SpeakerProfile::default()).0)
        .collect()
}

#[test]
fn loaded_pipeline_transcribes_identically() {
    let original = asr();
    let bytes = artifact_bytes();
    let loaded = TrainedAsr::read_from(&bytes[..]).unwrap();
    assert_eq!(loaded.name(), original.name());
    for wave in test_waves() {
        assert_eq!(loaded.transcribe(&wave), original.transcribe(&wave));
        // Stronger than equal text: the logit matrices agree bit-exactly.
        assert_eq!(loaded.logits(&wave), original.logits(&wave));
    }
}

#[test]
fn serialisation_is_deterministic() {
    assert_eq!(artifact_bytes(), artifact_bytes());
}

#[test]
fn truncated_artifact_is_refused() {
    let bytes = artifact_bytes();
    for cut in [0, 3, 10, 17, 18, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(TrainedAsr::read_from(&bytes[..cut]), Err(ArtifactError::Truncated)),
            "cut {cut}"
        );
    }
}

#[test]
fn bit_flipped_payload_is_refused() {
    let mut bytes = artifact_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    assert!(matches!(
        TrainedAsr::read_from(&bytes[..]),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_kind_is_refused() {
    // An acoustic-model artifact presented where a whole pipeline is
    // expected must fail on the header, before any field is decoded.
    let mut bytes = Vec::new();
    asr().acoustic_model().write_to(&mut bytes).unwrap();
    assert!(matches!(TrainedAsr::read_from(&bytes[..]), Err(ArtifactError::SchemaMismatch(_))));
    let am = AcousticModel::read_from(&bytes[..]).unwrap();
    assert_eq!(am.dim(), asr().acoustic_model().dim());
}

#[test]
fn disk_tier_round_trips_and_refuses_mismatched_profiles() {
    let dir = std::env::temp_dir().join(format!("mvp-asr-tier-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Miss: nothing on disk yet.
    let missing = AsrProfile::Kaldi.load(&dir).unwrap_err();
    assert!(missing.is_not_found(), "{missing:?}");

    // Populate the tier from the in-process model, then load.
    asr().save_file(&AsrProfile::Kaldi.artifact_path(&dir)).unwrap();
    let loaded = AsrProfile::Kaldi.load(&dir).unwrap();
    let wave = &test_waves()[0];
    assert_eq!(loaded.transcribe(wave), asr().transcribe(wave));

    // The same file under another profile's name is a schema error: the
    // stored name must match the requested profile.
    std::fs::copy(AsrProfile::Kaldi.artifact_path(&dir), AsrProfile::Ds0.artifact_path(&dir))
        .unwrap();
    assert!(matches!(AsrProfile::Ds0.load(&dir), Err(ArtifactError::SchemaMismatch(_))));

    // load_or_train refuses a corrupt file instead of clobbering it.
    let path = AsrProfile::Kaldi.artifact_path(&dir);
    let mut raw = std::fs::read(&path).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x40;
    std::fs::write(&path, &raw).unwrap();
    assert!(matches!(
        AsrProfile::Kaldi.load_or_train(&dir),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));

    std::fs::remove_dir_all(&dir).unwrap();
}
