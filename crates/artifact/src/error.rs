//! The typed failure taxonomy of the artifact plane.

use std::fmt;

/// Why an artifact could not be written or read back.
///
/// Every corruption mode a checkpoint file can exhibit maps to exactly one
/// variant; loading code never panics on bad bytes.
#[derive(Debug)]
pub enum ArtifactError {
    /// The stream does not start with the `MVPA` magic — not an artifact.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The container format or the per-kind schema version is not the one
    /// this build reads.
    VersionMismatch {
        /// Which version field disagreed (`"container"` or `"schema"`).
        layer: &'static str,
        /// The version found in the header.
        found: u16,
        /// The version this build expects.
        expected: u16,
    },
    /// The payload checksum does not match — the content was corrupted.
    ChecksumMismatch {
        /// Checksum stored in the file.
        found: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The stream ended before the declared content did.
    Truncated,
    /// The header or fields disagree with the expected artifact shape
    /// (wrong kind tag, trailing bytes, or internally inconsistent
    /// fields).
    SchemaMismatch(String),
    /// An underlying I/O failure (file missing, permissions, disk).
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic { found } => {
                write!(f, "not an MVPA artifact (magic bytes {found:02x?})")
            }
            ArtifactError::VersionMismatch { layer, found, expected } => {
                write!(f, "{layer} version {found} (this build reads {expected})")
            }
            ArtifactError::ChecksumMismatch { found, computed } => {
                write!(f, "payload checksum {computed:#018x} != stored {found:#018x} (corrupt)")
            }
            ArtifactError::Truncated => write!(f, "artifact truncated"),
            ArtifactError::SchemaMismatch(why) => write!(f, "artifact schema mismatch: {why}"),
            ArtifactError::Io(e) => write!(f, "artifact I/O: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    /// Wraps an I/O error, folding early-EOF into
    /// [`Truncated`](ArtifactError::Truncated) so callers see one variant
    /// for every cut-short stream.
    fn from(e: std::io::Error) -> ArtifactError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ArtifactError::Truncated
        } else {
            ArtifactError::Io(e)
        }
    }
}

impl ArtifactError {
    /// Whether this error means "the file does not exist" — the one case
    /// train-on-miss tiers treat as a cache miss rather than a failure.
    pub fn is_not_found(&self) -> bool {
        matches!(self, ArtifactError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_becomes_truncated() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(ArtifactError::from(eof), ArtifactError::Truncated));
        let denied = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(ArtifactError::from(denied), ArtifactError::Io(_)));
    }

    #[test]
    fn not_found_is_detected() {
        let nf = ArtifactError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(nf.is_not_found());
        assert!(!ArtifactError::Truncated.is_not_found());
    }

    #[test]
    fn display_is_informative() {
        let e = ArtifactError::VersionMismatch { layer: "schema", found: 9, expected: 1 };
        assert!(e.to_string().contains("schema version 9"));
    }
}
