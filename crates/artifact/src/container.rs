//! The artifact container: header, checksum, the [`Persist`] trait and
//! atomic file helpers.

use std::fs;
use std::io::{Read, Write};
use std::path::Path;

use crate::codec::{Decoder, Encoder};
use crate::error::ArtifactError;

/// The four magic bytes every artifact starts with.
pub const MAGIC: [u8; 4] = *b"MVPA";

/// Container format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// What an artifact's payload is — the `u16` kind tag in the header.
///
/// The registry of known kinds lives here so tags are allocated in one
/// place, but the crate never interprets payloads itself; downstream
/// crates pair each tag with a [`Persist`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKind(u16);

impl ArtifactKind {
    /// A contiguous `f64` matrix (`mvp_dsp::Mat`).
    pub const MAT: ArtifactKind = ArtifactKind(1);
    /// Per-dimension feature standardisation (`mvp_asr::am::FeatureScaler`).
    pub const FEATURE_SCALER: ArtifactKind = ArtifactKind(2);
    /// Acoustic-model weights (`mvp_asr::AcousticModel`).
    pub const ACOUSTIC_MODEL: ArtifactKind = ArtifactKind(3);
    /// Bigram language model (`mvp_asr::BigramLm`).
    pub const BIGRAM_LM: ArtifactKind = ArtifactKind(4);
    /// A whole trained ASR pipeline (`mvp_asr::TrainedAsr`).
    pub const TRAINED_ASR: ArtifactKind = ArtifactKind(5);
    /// Support-vector machine (`mvp_ml::Svm`).
    pub const SVM: ArtifactKind = ArtifactKind(6);
    /// K-nearest-neighbours reference set (`mvp_ml::Knn`).
    pub const KNN: ArtifactKind = ArtifactKind(7);
    /// One CART tree (`mvp_ml::tree::DecisionTree`).
    pub const DECISION_TREE: ArtifactKind = ArtifactKind(8);
    /// Bagged forest (`mvp_ml::RandomForest`).
    pub const RANDOM_FOREST: ArtifactKind = ArtifactKind(9);
    /// A fitted classifier of any paper kind (`mvp_ml::FittedClassifier`).
    pub const FITTED_CLASSIFIER: ArtifactKind = ArtifactKind(10);
    /// Benign-only threshold detector (`mvp_ears::ThresholdDetector`).
    pub const THRESHOLD_DETECTOR: ArtifactKind = ArtifactKind(11);
    /// A bank of per-auxiliary threshold detectors.
    pub const THRESHOLD_BANK: ArtifactKind = ArtifactKind(12);
    /// A whole detection system (`mvp_ears::DetectionSystemSnapshot`).
    pub const DETECTION_SNAPSHOT: ArtifactKind = ArtifactKind(13);
    /// Benign-only one-class scorer (`mvp_ml::OneClassScorer`).
    pub const ONE_CLASS_SCORER: ArtifactKind = ArtifactKind(14);
    /// Similarity + modality fusion classifier (`mvp_ears::FusedClassifier`).
    pub const FUSED_CLASSIFIER: ArtifactKind = ArtifactKind(15);
    /// Int8-quantized ASR pipeline (`mvp_asr::QuantizedAsr`).
    pub const QUANTIZED_ASR: ArtifactKind = ArtifactKind(16);

    /// A kind with an explicit tag (downstream/experimental artifacts
    /// should use tags `>= 0x7000` to stay clear of the registry).
    pub const fn new(tag: u16) -> ArtifactKind {
        ArtifactKind(tag)
    }

    /// The raw header tag.
    pub const fn tag(self) -> u16 {
        self.0
    }
}

/// FNV-1a 64-bit hash — the payload checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes one artifact: header, payload, checksum.
pub fn write_artifact<W: Write>(
    mut w: W,
    kind: ArtifactKind,
    schema: u16,
    payload: &[u8],
) -> Result<(), ArtifactError> {
    w.write_all(&MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&kind.tag().to_le_bytes())?;
    w.write_all(&schema.to_le_bytes())?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv1a(payload).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, ArtifactError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Reads and fully validates one artifact of the expected kind, returning
/// the checksum-verified payload. Field decoding happens afterwards, so a
/// corrupt payload is rejected before a single field is interpreted.
pub fn read_artifact<R: Read>(
    mut r: R,
    kind: ArtifactKind,
    schema: u16,
) -> Result<Vec<u8>, ArtifactError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic { found: magic });
    }
    let format = read_u16(&mut r)?;
    if format != FORMAT_VERSION {
        return Err(ArtifactError::VersionMismatch {
            layer: "container",
            found: format,
            expected: FORMAT_VERSION,
        });
    }
    let found_kind = read_u16(&mut r)?;
    if found_kind != kind.tag() {
        return Err(ArtifactError::SchemaMismatch(format!(
            "artifact kind {found_kind} where kind {} was expected",
            kind.tag()
        )));
    }
    let found_schema = read_u16(&mut r)?;
    if found_schema != schema {
        return Err(ArtifactError::VersionMismatch {
            layer: "schema",
            found: found_schema,
            expected: schema,
        });
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len = usize::try_from(u64::from_le_bytes(len_bytes))
        .map_err(|_| ArtifactError::SchemaMismatch("payload length exceeds usize".into()))?;
    // Stream the payload in bounded chunks: a corrupt length cannot force
    // a giant up-front allocation, it just runs out of bytes.
    let mut payload = Vec::new();
    let mut taken = (&mut r).take(len as u64);
    taken.read_to_end(&mut payload).map_err(ArtifactError::from)?;
    if payload.len() < len {
        return Err(ArtifactError::Truncated);
    }
    let mut sum_bytes = [0u8; 8];
    r.read_exact(&mut sum_bytes)?;
    let found = u64::from_le_bytes(sum_bytes);
    let computed = fnv1a(&payload);
    if found != computed {
        return Err(ArtifactError::ChecksumMismatch { found, computed });
    }
    Ok(payload)
}

/// A type that persists through the artifact plane.
///
/// Implementors provide the field layout ([`encode`](Persist::encode) /
/// [`decode`](Persist::decode)); the trait supplies the container framing
/// over any `std::io` stream and atomic on-disk save/load. Nested records
/// compose by calling each other's `encode`/`decode` directly — only the
/// outermost artifact carries a header.
pub trait Persist: Sized {
    /// The kind tag written to (and required from) the header.
    const KIND: ArtifactKind;
    /// Version of this type's field layout; bump on layout change.
    const SCHEMA_VERSION: u16;

    /// Appends this value's fields to the payload.
    fn encode(&self, enc: &mut Encoder);

    /// Reads this value's fields back, in [`encode`](Persist::encode)
    /// order.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError>;

    /// Writes a complete artifact (header + fields + checksum) to `w`.
    fn write_to<W: Write>(&self, w: W) -> Result<(), ArtifactError> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        write_artifact(w, Self::KIND, Self::SCHEMA_VERSION, enc.as_bytes())
    }

    /// Reads a complete artifact from `r`, validating magic, versions,
    /// kind, checksum, and that every payload byte is consumed.
    fn read_from<R: Read>(r: R) -> Result<Self, ArtifactError> {
        let payload = read_artifact(r, Self::KIND, Self::SCHEMA_VERSION)?;
        let mut dec = Decoder::new(&payload);
        let value = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(value)
    }

    /// Saves atomically: writes to a sibling temp file, then renames over
    /// `path`, so readers never observe a half-written artifact. Parent
    /// directories are created as needed.
    fn save_file(&self, path: &Path) -> Result<(), ArtifactError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".{}.tmp", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let file = fs::File::create(&tmp)?;
            self.write_to(std::io::BufWriter::new(file))?;
            fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Loads from `path`; a missing file surfaces as
    /// [`ArtifactError::Io`] with `NotFound` (see
    /// [`ArtifactError::is_not_found`]).
    fn load_file(path: &Path) -> Result<Self, ArtifactError> {
        let file = fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny artifact for container-level tests.
    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<f64>);

    impl Persist for Blob {
        const KIND: ArtifactKind = ArtifactKind::new(0x7fff);
        const SCHEMA_VERSION: u16 = 3;
        fn encode(&self, enc: &mut Encoder) {
            enc.put_f64s(&self.0);
        }
        fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
            Ok(Blob(dec.f64s()?))
        }
    }

    fn blob_bytes() -> (Blob, Vec<u8>) {
        let blob = Blob(vec![1.0, -2.5, 1e-300]);
        let mut bytes = Vec::new();
        blob.write_to(&mut bytes).unwrap();
        (blob, bytes)
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Reference values for the 64-bit FNV-1a test suite.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn round_trip() {
        let (blob, bytes) = blob_bytes();
        assert_eq!(Blob::read_from(&bytes[..]).unwrap(), blob);
    }

    #[test]
    fn bad_magic() {
        let (_, mut bytes) = blob_bytes();
        bytes[0] = b'X';
        assert!(matches!(Blob::read_from(&bytes[..]), Err(ArtifactError::BadMagic { .. })));
    }

    #[test]
    fn container_version_skew() {
        let (_, mut bytes) = blob_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Blob::read_from(&bytes[..]),
            Err(ArtifactError::VersionMismatch { layer: "container", found: 99, .. })
        ));
    }

    #[test]
    fn schema_version_skew() {
        let (_, mut bytes) = blob_bytes();
        bytes[8] = Blob::SCHEMA_VERSION as u8 + 1;
        assert!(matches!(
            Blob::read_from(&bytes[..]),
            Err(ArtifactError::VersionMismatch { layer: "schema", .. })
        ));
    }

    #[test]
    fn wrong_kind_header() {
        let (_, mut bytes) = blob_bytes();
        bytes[6] = ArtifactKind::MAT.tag() as u8;
        bytes[7] = 0;
        assert!(matches!(Blob::read_from(&bytes[..]), Err(ArtifactError::SchemaMismatch(_))));
    }

    #[test]
    fn every_truncation_point_is_clean() {
        let (_, bytes) = blob_bytes();
        for cut in 0..bytes.len() {
            let err = Blob::read_from(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ArtifactError::Truncated),
                "cut {cut}: unexpected {err:?} (len {})",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let (blob, bytes) = blob_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                match Blob::read_from(&corrupt[..]) {
                    // A flip may hit header fields (typed errors) or the
                    // payload/checksum (ChecksumMismatch) — but it must
                    // never round-trip to the original unnoticed...
                    Err(_) => {}
                    // ...unless it flipped a payload bit AND the matching
                    // checksum bit — impossible with a single flip.
                    Ok(back) => {
                        assert_ne!(back, blob, "byte {byte} bit {bit} silently ignored");
                        // Value changed but checksum passed? That means the
                        // flip was in the length prefix region producing a
                        // consistent read — FNV over different bytes
                        // colliding is not possible for 1-bit flips of the
                        // same length, so reaching here is a bug.
                        panic!("byte {byte} bit {bit}: corrupt read succeeded");
                    }
                }
            }
        }
    }

    #[test]
    fn save_is_atomic_and_load_reports_not_found() {
        let dir = std::env::temp_dir().join(format!("mvpa-container-{}", std::process::id()));
        let path = dir.join("nested/blob.mvpa");
        let missing = Blob::load_file(&path).unwrap_err();
        assert!(missing.is_not_found(), "{missing:?}");
        let (blob, _) = blob_bytes();
        blob.save_file(&path).unwrap();
        assert_eq!(Blob::load_file(&path).unwrap(), blob);
        // No temp file left behind.
        let leftovers: Vec<_> =
            fs::read_dir(path.parent().unwrap()).unwrap().map(|e| e.unwrap().file_name()).collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("blob.mvpa")]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
