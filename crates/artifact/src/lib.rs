#![warn(missing_docs)]

//! The artifact plane: versioned, checksummed binary model checkpoints.
//!
//! Every trained artifact in the workspace — acoustic models, language
//! models, whole ASR pipelines, classifiers, threshold detectors, detector
//! snapshots — persists through this crate, so a deployed detector can
//! cold-start from disk instead of retraining, and can *refuse* to serve
//! from a corrupt or version-skewed checkpoint with a typed error rather
//! than a panic or silent garbage.
//!
//! # Container format
//!
//! One artifact is one self-describing byte stream:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MVPA"
//! 4       2     container format version (LE u16)
//! 6       2     artifact kind tag       (LE u16)   — what the payload is
//! 8       2     schema version          (LE u16)   — per-kind field layout
//! 10      8     payload length          (LE u64)
//! 18      n     payload: length-prefixed little-endian fields
//! 18+n    8     FNV-1a 64 checksum of the payload (LE u64)
//! ```
//!
//! The payload is a flat sequence of fields written by [`Encoder`] and
//! read back by [`Decoder`]: fixed-width integers and `f64`s (bit-exact,
//! so loaded models reproduce trained behaviour to the last bit), and
//! length-prefixed strings, slices and [`Mat`]s. There is no
//! self-description inside the payload — the `(kind, schema)` pair in the
//! header names the exact field layout, which is why both are checked
//! before a single field is decoded.
//!
//! # Failure taxonomy
//!
//! Every way a checkpoint can be wrong maps to one [`ArtifactError`]
//! variant — [`BadMagic`](ArtifactError::BadMagic) (not an artifact at
//! all), [`VersionMismatch`](ArtifactError::VersionMismatch) (container or
//! schema skew), [`SchemaMismatch`](ArtifactError::SchemaMismatch) (wrong
//! kind, or fields inconsistent with each other),
//! [`ChecksumMismatch`](ArtifactError::ChecksumMismatch) (payload
//! corruption), [`Truncated`](ArtifactError::Truncated) (file cut short)
//! and [`Io`](ArtifactError::Io). Loading never panics on bad bytes.
//!
//! # Examples
//!
//! ```
//! use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};
//!
//! #[derive(Debug, PartialEq)]
//! struct Calibration {
//!     gain: f64,
//!     taps: Vec<f64>,
//! }
//!
//! impl Persist for Calibration {
//!     const KIND: ArtifactKind = ArtifactKind::new(0x7001);
//!     const SCHEMA_VERSION: u16 = 1;
//!     fn encode(&self, enc: &mut Encoder) {
//!         enc.put_f64(self.gain);
//!         enc.put_f64s(&self.taps);
//!     }
//!     fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
//!         Ok(Calibration { gain: dec.f64()?, taps: dec.f64s()? })
//!     }
//! }
//!
//! let cal = Calibration { gain: 0.5, taps: vec![1.0, -2.0, 3.0] };
//! let mut bytes = Vec::new();
//! cal.write_to(&mut bytes).unwrap();
//! assert_eq!(Calibration::read_from(&bytes[..]).unwrap(), cal);
//!
//! // A flipped payload bit is caught by the checksum, never decoded.
//! let n = bytes.len();
//! bytes[n - 12] ^= 0x10;
//! assert!(matches!(
//!     Calibration::read_from(&bytes[..]),
//!     Err(ArtifactError::ChecksumMismatch { .. })
//! ));
//! ```

pub mod codec;
pub mod container;
pub mod error;

pub use codec::{Decoder, Encoder};
pub use container::{read_artifact, write_artifact, ArtifactKind, Persist, FORMAT_VERSION, MAGIC};
pub use error::ArtifactError;

use mvp_dsp::Mat;

impl Persist for Mat {
    const KIND: ArtifactKind = ArtifactKind::MAT;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_mat(self);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        dec.mat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat_round_trips() {
        let m = Mat::from_rows(vec![vec![1.5, -2.25], vec![0.0, f64::MIN_POSITIVE]], 2);
        let mut bytes = Vec::new();
        m.write_to(&mut bytes).unwrap();
        assert_eq!(Mat::read_from(&bytes[..]).unwrap(), m);
    }

    #[test]
    fn empty_mat_round_trips() {
        let m = Mat::default();
        let mut bytes = Vec::new();
        m.write_to(&mut bytes).unwrap();
        let back = Mat::read_from(&bytes[..]).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.n_cols(), 0);
    }
}
