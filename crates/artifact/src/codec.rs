//! Field-level encoding: little-endian primitives and length-prefixed
//! composites over a flat byte buffer.
//!
//! [`Encoder`] appends to an in-memory payload; [`Decoder`] walks a
//! checksum-verified payload with a cursor, returning
//! [`ArtifactError::Truncated`] the moment a read would run past the end —
//! a corrupt length prefix can therefore never trigger an oversized
//! allocation, because every declared length is checked against the bytes
//! actually remaining before anything is reserved.

use mvp_dsp::Mat;

use crate::error::ArtifactError;

/// Appends fields to an artifact payload.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty payload.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends an `f64` bit-exactly (IEEE-754 bits, little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed `i8` slice (quantized tensors), one
    /// two's-complement byte per element.
    pub fn put_i8s(&mut self, v: &[i8]) {
        self.put_usize(v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends a length-prefixed slice of `usize`s (stored as `u64`).
    pub fn put_usizes(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }

    /// Appends a matrix: row and column counts, then the row-major buffer.
    pub fn put_mat(&mut self, m: &Mat) {
        self.put_usize(m.n_rows());
        self.put_usize(m.n_cols());
        for &x in m.as_slice() {
            self.put_f64(x);
        }
    }
}

/// Walks an artifact payload, decoding fields in write order.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `payload`.
    pub fn new(payload: &'a [u8]) -> Decoder<'a> {
        Decoder { buf: payload, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ArtifactError> {
        // mvp-lint: allow(panic-path) -- take(4)? returned exactly 4 bytes, so the array conversion cannot fail
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ArtifactError> {
        // mvp-lint: allow(panic-path) -- take(8)? returned exactly 8 bytes, so the array conversion cannot fail
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and converts to `usize`.
    pub fn usize(&mut self) -> Result<usize, ArtifactError> {
        usize::try_from(self.u64()?)
            .map_err(|_| ArtifactError::SchemaMismatch("count exceeds usize".into()))
    }

    /// Reads a bool byte; anything but `0`/`1` is a schema error.
    pub fn bool(&mut self) -> Result<bool, ArtifactError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ArtifactError::SchemaMismatch(format!("bool byte {other}"))),
        }
    }

    /// Reads an `f64` bit-exactly.
    pub fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a declared element count, verifying that `elem_size`-byte
    /// elements of that count actually fit in the remaining payload.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, ArtifactError> {
        let n = self.usize()?;
        if n.checked_mul(elem_size).is_none_or(|bytes| bytes > self.remaining()) {
            return Err(ArtifactError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ArtifactError> {
        let n = self.checked_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::SchemaMismatch("invalid UTF-8 in string field".into()))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, ArtifactError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed `i8` vector written by
    /// [`Encoder::put_i8s`].
    pub fn i8s(&mut self) -> Result<Vec<i8>, ArtifactError> {
        let n = self.checked_len(1)?;
        let bytes = self.take(n)?;
        Ok(bytes.iter().map(|&b| i8::from_le_bytes([b])).collect())
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, ArtifactError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    /// Reads a matrix written by [`Encoder::put_mat`].
    pub fn mat(&mut self) -> Result<Mat, ArtifactError> {
        let n_rows = self.usize()?;
        let n_cols = self.usize()?;
        let total = n_rows
            .checked_mul(n_cols)
            .ok_or_else(|| ArtifactError::SchemaMismatch("matrix shape overflow".into()))?;
        if total.checked_mul(8).is_none_or(|bytes| bytes > self.remaining()) {
            return Err(ArtifactError::Truncated);
        }
        // mvp-lint: allow(unbounded-with-capacity) -- `total` is checked against remaining() two lines up via checked_mul(8); the look-back heuristic cannot see through the closure
        let mut data = Vec::with_capacity(total);
        for _ in 0..total {
            data.push(self.f64()?);
        }
        if n_rows > 0 && n_cols == 0 {
            return Err(ArtifactError::SchemaMismatch("matrix rows with zero columns".into()));
        }
        Ok(Mat::from_vec(data, n_cols))
    }

    /// Asserts the whole payload was consumed; trailing bytes mean the
    /// writer and reader disagree about the field layout.
    pub fn finish(self) -> Result<(), ArtifactError> {
        if self.remaining() != 0 {
            return Err(ArtifactError::SchemaMismatch(format!(
                "{} trailing payload bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u16(65_535);
        enc.put_u32(1 << 30);
        enc.put_u64(u64::MAX);
        enc.put_bool(true);
        enc.put_f64(-0.0);
        enc.put_str("open the door");
        enc.put_f64s(&[1.0, f64::NAN, f64::NEG_INFINITY]);
        enc.put_i8s(&[i8::MIN, -1, 0, 1, i8::MAX]);
        enc.put_usizes(&[0, 42]);
        let mut dec = Decoder::new(enc.as_bytes());
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u16().unwrap(), 65_535);
        assert_eq!(dec.u32().unwrap(), 1 << 30);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert!(dec.bool().unwrap());
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(dec.str().unwrap(), "open the door");
        let v = dec.f64s().unwrap();
        assert_eq!(v.len(), 3);
        assert!(v[1].is_nan());
        assert_eq!(dec.i8s().unwrap(), vec![i8::MIN, -1, 0, 1, i8::MAX]);
        assert_eq!(dec.usizes().unwrap(), vec![0, 42]);
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut enc = Encoder::new();
        enc.put_f64s(&[1.0, 2.0, 3.0]);
        let bytes = enc.as_bytes();
        // Cut at every prefix length: all must be Truncated, never panic.
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(matches!(dec.f64s(), Err(ArtifactError::Truncated)), "cut {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_truncated_not_alloc() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX); // claims ~2^64 elements
        let mut dec = Decoder::new(enc.as_bytes());
        assert!(matches!(dec.f64s(), Err(ArtifactError::Truncated)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Encoder::new();
        enc.put_u8(1);
        enc.put_u8(2);
        let mut dec = Decoder::new(enc.as_bytes());
        assert_eq!(dec.u8().unwrap(), 1);
        assert!(matches!(dec.finish(), Err(ArtifactError::SchemaMismatch(_))));
    }

    #[test]
    fn mat_shape_errors_are_schema_mismatches() {
        let mut enc = Encoder::new();
        enc.put_usize(3); // rows
        enc.put_usize(0); // cols — inconsistent with rows > 0
        let mut dec = Decoder::new(enc.as_bytes());
        assert!(matches!(dec.mat(), Err(ArtifactError::SchemaMismatch(_))));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_schema_mismatches() {
        let mut dec = Decoder::new(&[2]);
        assert!(matches!(dec.bool(), Err(ArtifactError::SchemaMismatch(_))));
        let mut enc = Encoder::new();
        enc.put_usize(2);
        let mut raw = enc.as_bytes().to_vec();
        raw.extend_from_slice(&[0xff, 0xfe]);
        let mut dec = Decoder::new(&raw);
        assert!(matches!(dec.str(), Err(ArtifactError::SchemaMismatch(_))));
    }
}
