//! Property tests for the artifact container: round-trip fidelity for
//! arbitrary payloads, and a corruption taxonomy — every truncation and
//! every single-byte mutation of a valid artifact must surface as a typed
//! [`ArtifactError`], never a panic and never a silently-different value.

use proptest::collection::vec;
use proptest::prelude::*;

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};

/// A record exercising every field shape the codec offers.
#[derive(Debug, Clone, PartialEq)]
struct Omnibus {
    flag: bool,
    count: usize,
    scale: f64,
    name: String,
    weights: Vec<f64>,
    indices: Vec<usize>,
}

impl Persist for Omnibus {
    const KIND: ArtifactKind = ArtifactKind::new(0x7002);
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(self.flag);
        enc.put_usize(self.count);
        enc.put_f64(self.scale);
        enc.put_str(&self.name);
        enc.put_f64s(&self.weights);
        enc.put_usizes(&self.indices);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        Ok(Omnibus {
            flag: dec.bool()?,
            count: dec.usize()?,
            scale: dec.f64()?,
            name: dec.str()?,
            weights: dec.f64s()?,
            indices: dec.usizes()?,
        })
    }
}

fn omnibus(
    flag: bool,
    count: usize,
    scale: f64,
    name: String,
    weights: Vec<f64>,
    indices: Vec<usize>,
) -> Omnibus {
    Omnibus { flag, count, scale, name, weights, indices }
}

proptest! {
    #[test]
    fn arbitrary_records_round_trip(
        flag in 0u8..2,
        count in 0usize..1_000_000,
        scale in -1e12f64..1e12,
        name in "[a-z ]{0,24}",
        weights in vec(-1e6f64..1e6, 0..40),
        indices in vec(0usize..10_000, 0..20),
    ) {
        let rec = omnibus(flag == 1, count, scale, name, weights, indices);
        let mut bytes = Vec::new();
        rec.write_to(&mut bytes).unwrap();
        prop_assert_eq!(Omnibus::read_from(&bytes[..]).unwrap(), rec);
    }

    #[test]
    fn every_truncation_is_a_typed_error(
        scale in -10.0f64..10.0,
        name in "[a-z]{0,8}",
        weights in vec(-10.0f64..10.0, 0..8),
    ) {
        let rec = omnibus(true, 3, scale, name, weights, vec![1, 2]);
        let mut bytes = Vec::new();
        rec.write_to(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            prop_assert!(
                matches!(Omnibus::read_from(&bytes[..cut]), Err(ArtifactError::Truncated)),
                "cut at {cut} of {} was not Truncated",
                bytes.len()
            );
        }
    }

    #[test]
    fn random_byte_mutations_never_pass_unnoticed(
        scale in -10.0f64..10.0,
        weights in vec(-10.0f64..10.0, 1..8),
        byte_pick in 0usize..10_000,
        flip in 1usize..256,
    ) {
        let flip = flip as u8;
        let rec = omnibus(false, 7, scale, "probe".to_string(), weights, vec![0, 5]);
        let mut bytes = Vec::new();
        rec.write_to(&mut bytes).unwrap();
        let pos = byte_pick % bytes.len();
        bytes[pos] ^= flip;
        match Omnibus::read_from(&bytes[..]) {
            Err(_) => {}
            Ok(back) => prop_assert!(
                false,
                "mutating byte {pos} by {flip:#04x} read back as {back:?}"
            ),
        }
    }

    #[test]
    fn random_garbage_never_panics(
        garbage in vec(0usize..256, 0..64),
    ) {
        let bytes: Vec<u8> = garbage.into_iter().map(|b| b as u8).collect();
        // Any outcome but a panic is acceptable; genuinely valid random
        // artifacts of this size are astronomically unlikely.
        let _ = Omnibus::read_from(&bytes[..]);
    }
}
