//! Benign-stability property: transform-and-compare drift on clean
//! corpus utterances stays below a threshold fitted on a disjoint clean
//! corpus. This is the contract the whole modality rests on — if benign
//! speech drifted past the fitted bound, the transform features would
//! flag clean traffic instead of adversarial perturbations.
//!
//! Everything is seeded: the fit corpus, the property draws, and the
//! vendored proptest runner (per-test-name RNG), so a failure
//! reproduces exactly.

use std::sync::OnceLock;

use proptest::prelude::*;

use mvp_asr::{Asr, AsrProfile, TrainedAsr};
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_modality::{Modality, ModalityInput, TransformCompare};

/// Per-utterance drift: how far the *least* stable transform strays
/// from a perfect re-transcription (features are similarities, higher =
/// more stable, so drift = 1 - min feature).
fn drift(asr: &TrainedAsr, wave: &mvp_audio::Waveform) -> f64 {
    let target = asr.transcribe(wave);
    let score = TransformCompare::default().score(&ModalityInput::new(asr, wave, &target));
    1.0 - score.features.iter().fold(f64::INFINITY, |a, &b| a.min(b))
}

struct FittedBound {
    asr: std::sync::Arc<TrainedAsr>,
    /// Max clean-corpus drift observed at fit time, plus slack for
    /// utterances the fit corpus did not cover.
    threshold: f64,
}

/// Fits the benign drift bound once: max drift over a seeded clean
/// corpus plus a fixed slack margin, the same shape as the workspace's
/// benign-quantile threshold fits.
fn fitted() -> &'static FittedBound {
    static BOUND: OnceLock<FittedBound> = OnceLock::new();
    BOUND.get_or_init(|| {
        let asr = AsrProfile::Ds0.trained();
        let corpus = CorpusBuilder::new(CorpusConfig {
            size: 16,
            seed: 977,
            noise_prob: 0.0,
            ..CorpusConfig::default()
        })
        .build();
        let max_drift =
            corpus.utterances().iter().map(|u| drift(&asr, &u.wave)).fold(0.0f64, f64::max);
        FittedBound { asr, threshold: (max_drift + 0.15).min(1.0) }
    })
}

proptest! {
    #[test]
    fn clean_corpus_drift_stays_below_fitted_threshold(seed in 1_000u64..9_000) {
        let bound = fitted();
        // A fresh one-utterance clean corpus per case, disjoint from the
        // fit corpus by seed range.
        let corpus = CorpusBuilder::new(CorpusConfig {
            size: 1,
            seed,
            noise_prob: 0.0,
            ..CorpusConfig::default()
        })
        .build();
        let utterance = &corpus.utterances()[0];
        let d = drift(&bound.asr, &utterance.wave);
        prop_assert!(
            d <= bound.threshold,
            "clean drift {d:.3} above fitted threshold {:.3} for {:?} (seed {seed})",
            bound.threshold,
            utterance.text
        );
    }
}
