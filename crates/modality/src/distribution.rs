//! Output-distribution features (DistriBlock / logit-noising style):
//! characterise the target ASR's per-frame output distribution and its
//! decode stability under seeded logit noise.
//!
//! Adversarial perturbations steer the acoustic model through
//! low-margin regions of its decision surface: frame distributions run
//! hotter (higher entropy, lower max probability, thinner top-1/top-2
//! margin) and small logit perturbations flip the decoded string far
//! more often than on benign speech.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mvp_asr::am::{softmax_into, N_CLASSES};
use mvp_dsp::Mat;

use crate::{drift_similarity, CostTier, Modality, ModalityInput, ModalityKind, ModalityScore};

/// The output-distribution modality. Features, in order (all oriented
/// higher = more benign-stable):
///
/// 1. `negentropy` — `1 − H/ln C`, mean over frames;
/// 2. `max_prob` — mean per-frame max softmax probability;
/// 3. `margin` — mean per-frame top-1 − top-2 softmax margin;
/// 4. `noise_stability` — mean drift similarity of the decode under
///    seeded Gaussian logit noise vs. the clean decode.
#[derive(Debug, Clone)]
pub struct DistributionFeatures {
    noise_draws: usize,
    noise_scale: f64,
    seed: u64,
}

impl Default for DistributionFeatures {
    fn default() -> DistributionFeatures {
        DistributionFeatures { noise_draws: 3, noise_scale: 0.5, seed: 0xD157 }
    }
}

impl DistributionFeatures {
    /// A modality with explicit noise configuration: `noise_draws`
    /// seeded logit perturbations of standard deviation `noise_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `noise_draws` is zero or `noise_scale` is not positive.
    pub fn new(noise_draws: usize, noise_scale: f64, seed: u64) -> DistributionFeatures {
        assert!(noise_draws > 0, "at least one noise draw is required");
        assert!(noise_scale > 0.0, "noise scale must be positive");
        DistributionFeatures { noise_draws, noise_scale, seed }
    }
}

/// A cheap deterministic standard-normal draw (Box–Muller over the
/// shim RNG's uniforms).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12f64..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Modality for DistributionFeatures {
    fn name(&self) -> &'static str {
        ModalityKind::Distribution.name()
    }

    fn kind(&self) -> ModalityKind {
        ModalityKind::Distribution
    }

    fn cost(&self) -> CostTier {
        CostTier::Cheap
    }

    fn feature_dim(&self) -> usize {
        4
    }

    fn feature_names(&self) -> &'static [&'static str] {
        &["negentropy", "max_prob", "margin", "noise_stability"]
    }

    fn score(&self, input: &ModalityInput<'_>) -> ModalityScore {
        let logits = input.asr.logits(input.wave);
        if logits.is_empty() {
            // No frames (empty/near-empty audio): neutral, maximally
            // benign-stable evidence rather than NaNs.
            return ModalityScore { features: vec![1.0; self.feature_dim()] };
        }

        let ln_c = (N_CLASSES as f64).ln();
        let mut probs = vec![0.0f64; N_CLASSES];
        let (mut entropy_sum, mut max_sum, mut margin_sum) = (0.0f64, 0.0f64, 0.0f64);
        for frame in logits.rows() {
            softmax_into(frame, &mut probs);
            let mut entropy = 0.0;
            let (mut top1, mut top2) = (0.0f64, 0.0f64);
            for &p in &probs {
                if p > 0.0 {
                    entropy -= p * p.ln();
                }
                if p > top1 {
                    top2 = top1;
                    top1 = p;
                } else if p > top2 {
                    top2 = p;
                }
            }
            entropy_sum += entropy / ln_c;
            max_sum += top1;
            margin_sum += top1 - top2;
        }
        let n = logits.n_rows() as f64;

        let clean = input.asr.decoder().decode(&logits);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut stability = 0.0f64;
        let mut noisy = Mat::zeros(logits.n_rows(), logits.n_cols());
        for _ in 0..self.noise_draws {
            for (dst, &src) in noisy.as_mut_slice().iter_mut().zip(logits.as_slice()) {
                *dst = src + self.noise_scale * gaussian(&mut rng);
            }
            stability += drift_similarity(&clean, &input.asr.decoder().decode(&noisy));
        }

        ModalityScore {
            features: vec![
                1.0 - entropy_sum / n,
                max_sum / n,
                margin_sum / n,
                stability / self.noise_draws as f64,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::{Asr, AsrProfile};
    use mvp_audio::synth::{SpeakerProfile, Synthesizer};
    use mvp_audio::Waveform;
    use mvp_phonetics::Lexicon;

    fn scored(wave: &Waveform) -> Vec<f64> {
        let asr = AsrProfile::Ds0.trained();
        let target = asr.transcribe(wave);
        DistributionFeatures::default().score(&ModalityInput::new(&asr, wave, &target)).features
    }

    #[test]
    fn features_are_unit_bounded() {
        let synth = Synthesizer::new(16_000);
        let (wave, _) = synth.synthesize(
            &Lexicon::builtin(),
            "open the front door",
            &SpeakerProfile::default(),
        );
        let f = scored(&wave);
        assert_eq!(f.len(), 4);
        for (i, v) in f.iter().enumerate() {
            assert!((0.0..=1.0).contains(v), "feature {i} = {v}");
        }
    }

    #[test]
    fn empty_audio_is_neutral() {
        let wave = Waveform::from_samples(Vec::new(), 16_000);
        assert_eq!(scored(&wave), vec![1.0; 4]);
    }

    #[test]
    fn deterministic_across_calls() {
        let synth = Synthesizer::new(16_000);
        let (wave, _) =
            synth.synthesize(&Lexicon::builtin(), "good morning", &SpeakerProfile::default());
        assert_eq!(scored(&wave), scored(&wave));
    }

    #[test]
    fn confident_logits_score_stabler_than_flat() {
        // Synthetic check of the orientation contract on the entropy /
        // margin features: peaked distributions → higher features.
        let peaked = {
            let mut m = Mat::zeros(4, N_CLASSES);
            for r in 0..4 {
                m.row_mut(r)[r % N_CLASSES] = 12.0;
            }
            m
        };
        let ln_c = (N_CLASSES as f64).ln();
        let mut probs = vec![0.0; N_CLASSES];
        softmax_into(peaked.row(0), &mut probs);
        let entropy: f64 = -probs.iter().filter(|&&p| p > 0.0).map(|&p| p * p.ln()).sum::<f64>();
        assert!(entropy / ln_c < 0.25, "peaked rows should have low entropy");
    }
}
