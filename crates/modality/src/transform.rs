//! Transform-and-compare (WaveGuard-style): re-transcribe the audio
//! after small audio-domain transforms and measure transcription drift.
//!
//! Benign speech is robust to mild quantization, resampling and
//! low-pass filtering; adversarial perturbations are crafted against the
//! exact input signal and often do not survive them, so the transformed
//! transcription drifts away from the original one.

use mvp_asr::AsrScratch;
use mvp_audio::{resample, Waveform};

use crate::{drift_similarity, CostTier, Modality, ModalityInput, ModalityKind, ModalityScore};

/// An input-purification transform over a [`Waveform`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AudioTransform {
    /// Quantize-dequantize: round every sample to `bits`-bit resolution.
    Quantize {
        /// Bit depth of the quantization grid (≥ 2).
        bits: u32,
    },
    /// Downsample to `rate` Hz and back up to the original rate.
    DownUpsample {
        /// Intermediate sample rate in Hz.
        rate: u32,
    },
    /// Single-pole low-pass filter.
    LowPass {
        /// −3 dB cutoff frequency in Hz.
        cutoff_hz: f64,
    },
}

impl AudioTransform {
    /// Stable lowercase name (feature names, tables).
    pub fn name(self) -> &'static str {
        match self {
            AudioTransform::Quantize { .. } => "quantize",
            AudioTransform::DownUpsample { .. } => "down_upsample",
            AudioTransform::LowPass { .. } => "low_pass",
        }
    }

    /// Applies the transform, returning a new waveform at the input's
    /// sample rate and length.
    pub fn apply(self, wave: &Waveform) -> Waveform {
        match self {
            AudioTransform::Quantize { bits } => {
                let levels = (1u32 << bits.clamp(2, 16)) - 1;
                let step = 2.0 / levels as f32;
                let samples = wave
                    .samples()
                    .iter()
                    .map(|&s| ((s.clamp(-1.0, 1.0) + 1.0) / step).round() * step - 1.0)
                    .collect();
                Waveform::from_samples(samples, wave.sample_rate())
            }
            AudioTransform::DownUpsample { rate } => {
                let down = resample(wave, rate);
                let up = resample(&down, wave.sample_rate());
                // Linear resampling can come back a sample short; pad so
                // downstream framing sees the original length.
                let mut samples = up.samples().to_vec();
                samples.resize(wave.samples().len(), 0.0);
                Waveform::from_samples(samples, wave.sample_rate())
            }
            AudioTransform::LowPass { cutoff_hz } => {
                let dt = 1.0 / wave.sample_rate() as f64;
                let rc = 1.0 / (2.0 * std::f64::consts::PI * cutoff_hz.max(1.0));
                let alpha = (dt / (rc + dt)) as f32;
                let mut y = 0.0f32;
                let samples = wave
                    .samples()
                    .iter()
                    .map(|&s| {
                        y += alpha * (s - y);
                        y
                    })
                    .collect();
                Waveform::from_samples(samples, wave.sample_rate())
            }
        }
    }
}

/// The default transform set: 8-bit quantization, an 8 kHz resampling
/// round trip, and a 3.5 kHz low-pass — the mild end of WaveGuard's
/// sweep, chosen to keep benign drift near zero.
pub const DEFAULT_TRANSFORMS: [AudioTransform; 3] = [
    AudioTransform::Quantize { bits: 8 },
    AudioTransform::DownUpsample { rate: 8_000 },
    AudioTransform::LowPass { cutoff_hz: 3_500.0 },
];

/// The transform-and-compare modality: one similarity feature per
/// transform (similarity of the re-transcription to the original target
/// transcription; higher = more stable = more benign-like).
#[derive(Debug, Clone)]
pub struct TransformCompare {
    transforms: Vec<AudioTransform>,
}

impl Default for TransformCompare {
    fn default() -> TransformCompare {
        TransformCompare { transforms: DEFAULT_TRANSFORMS.to_vec() }
    }
}

impl TransformCompare {
    /// A modality over a custom transform set.
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn new(transforms: Vec<AudioTransform>) -> TransformCompare {
        assert!(!transforms.is_empty(), "at least one transform is required");
        TransformCompare { transforms }
    }

    /// The transforms, in feature order.
    pub fn transforms(&self) -> &[AudioTransform] {
        &self.transforms
    }
}

impl Modality for TransformCompare {
    fn name(&self) -> &'static str {
        ModalityKind::Transform.name()
    }

    fn kind(&self) -> ModalityKind {
        ModalityKind::Transform
    }

    fn cost(&self) -> CostTier {
        CostTier::Moderate
    }

    fn feature_dim(&self) -> usize {
        self.transforms.len()
    }

    fn feature_names(&self) -> &'static [&'static str] {
        &["sim_quantize", "sim_down_upsample", "sim_low_pass"]
    }

    fn score(&self, input: &ModalityInput<'_>) -> ModalityScore {
        let transformed: Vec<Waveform> =
            self.transforms.iter().map(|t| t.apply(input.wave)).collect();
        let refs: Vec<&Waveform> = transformed.iter().collect();
        // The scratch plan amortises pipeline buffers across the batch —
        // the same zero-steady-state-allocation seam the serve workers use.
        let texts = input.asr.transcribe_batch_with(&refs, &mut AsrScratch::default());
        let features = texts.iter().map(|text| drift_similarity(input.target_text, text)).collect();
        ModalityScore { features }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::{Asr, AsrProfile};
    use mvp_audio::synth::{SpeakerProfile, Synthesizer};
    use mvp_phonetics::Lexicon;

    fn clean_utterance() -> Waveform {
        let synth = Synthesizer::new(16_000);
        synth
            .synthesize(
                &Lexicon::builtin(),
                "the man walked the street",
                &SpeakerProfile::default(),
            )
            .0
    }

    #[test]
    fn transforms_preserve_rate_and_length() {
        let wave = clean_utterance();
        for t in DEFAULT_TRANSFORMS {
            let out = t.apply(&wave);
            assert_eq!(out.sample_rate(), wave.sample_rate(), "{}", t.name());
            assert_eq!(out.samples().len(), wave.samples().len(), "{}", t.name());
        }
    }

    #[test]
    fn quantize_snaps_to_grid() {
        let wave = Waveform::from_samples(vec![0.1004, -0.73, 0.5], 16_000);
        let out = AudioTransform::Quantize { bits: 4 }.apply(&wave);
        let step = 2.0 / 15.0f32;
        for &s in out.samples() {
            let k = (s + 1.0) / step;
            assert!((k - k.round()).abs() < 1e-4, "sample {s} off-grid");
        }
    }

    #[test]
    fn low_pass_attenuates_high_frequency() {
        let rate = 16_000u32;
        let hf: Vec<f32> = (0..rate as usize)
            .map(|i| (2.0 * std::f32::consts::PI * 7_000.0 * i as f32 / rate as f32).sin())
            .collect();
        let wave = Waveform::from_samples(hf, rate);
        let out = AudioTransform::LowPass { cutoff_hz: 500.0 }.apply(&wave);
        assert!(out.rms() < wave.rms() * 0.3, "rms {} vs {}", out.rms(), wave.rms());
    }

    #[test]
    fn benign_audio_is_transform_stable() {
        let wave = clean_utterance();
        let asr = AsrProfile::Ds0.trained();
        let target = asr.transcribe(&wave);
        let modality = TransformCompare::default();
        let score = modality.score(&ModalityInput::new(&asr, &wave, &target));
        assert_eq!(score.features.len(), 3);
        for (f, t) in score.features.iter().zip(DEFAULT_TRANSFORMS) {
            assert!(*f > 0.6, "{}: drift similarity {f}", t.name());
        }
    }

    #[test]
    fn score_is_deterministic() {
        let wave = clean_utterance();
        let asr = AsrProfile::Ds0.trained();
        let target = asr.transcribe(&wave);
        let modality = TransformCompare::default();
        let input = ModalityInput::new(&asr, &wave, &target);
        assert_eq!(modality.score(&input), modality.score(&input));
    }
}
