//! Variant instability (FraudWhistler-style): transcribe N seeded noisy
//! copies of the input and measure how unstable the prediction is.
//!
//! Benign speech keeps its transcription under mild additive noise;
//! adversarial perturbations are fragile, so noisy variants snap back
//! toward the host utterance (or to something else entirely) and the
//! per-variant transcriptions disagree with the clean one. The feature
//! block these statistics form is what `mvp_ml::OneClassScorer` is
//! fitted on when the block is fused (benign-only training — no AE data
//! needed).

use mvp_asr::AsrScratch;
use mvp_audio::noise::mix_at_snr;
use mvp_audio::{NoiseKind, Waveform};

use crate::{drift_similarity, CostTier, Modality, ModalityInput, ModalityKind, ModalityScore};

/// The variant-instability modality. Features, in order (higher = more
/// benign-stable):
///
/// 1. `mean_agreement` — mean drift similarity of variant
///    transcriptions vs. the clean one;
/// 2. `min_agreement` — the worst variant's drift similarity;
/// 3. `exact_frac` — fraction of variants whose transcription is
///    byte-identical to the clean one.
#[derive(Debug, Clone)]
pub struct VariantInstability {
    n_variants: usize,
    snr_db: f64,
    seed: u64,
}

impl Default for VariantInstability {
    fn default() -> VariantInstability {
        VariantInstability { n_variants: 4, snr_db: 20.0, seed: 0x5EED }
    }
}

impl VariantInstability {
    /// A modality with explicit perturbation configuration:
    /// `n_variants` white-noise mixes at `snr_db` dB SNR, seeded from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_variants` is zero.
    pub fn new(n_variants: usize, snr_db: f64, seed: u64) -> VariantInstability {
        assert!(n_variants > 0, "at least one variant is required");
        VariantInstability { n_variants, snr_db, seed }
    }

    /// Number of perturbed variants per score.
    pub fn n_variants(&self) -> usize {
        self.n_variants
    }
}

impl Modality for VariantInstability {
    fn name(&self) -> &'static str {
        ModalityKind::Instability.name()
    }

    fn kind(&self) -> ModalityKind {
        ModalityKind::Instability
    }

    fn cost(&self) -> CostTier {
        CostTier::Heavy
    }

    fn feature_dim(&self) -> usize {
        3
    }

    fn feature_names(&self) -> &'static [&'static str] {
        &["mean_agreement", "min_agreement", "exact_frac"]
    }

    fn score(&self, input: &ModalityInput<'_>) -> ModalityScore {
        let n = input.wave.samples().len();
        if n == 0 {
            return ModalityScore { features: vec![1.0; self.feature_dim()] };
        }
        let variants: Vec<Waveform> = (0..self.n_variants)
            .map(|i| {
                let noise =
                    NoiseKind::White.generate(n, input.wave.sample_rate(), self.seed + i as u64);
                mix_at_snr(input.wave, &noise, self.snr_db)
            })
            .collect();
        let refs: Vec<&Waveform> = variants.iter().collect();
        let texts = input.asr.transcribe_batch_with(&refs, &mut AsrScratch::default());

        let clean = input.target_text;
        let agreements: Vec<f64> = texts.iter().map(|t| drift_similarity(clean, t)).collect();
        let mean = agreements.iter().sum::<f64>() / agreements.len() as f64;
        let min = agreements.iter().copied().fold(f64::INFINITY, f64::min);
        let exact =
            texts.iter().filter(|t| t.as_str() == clean).count() as f64 / texts.len() as f64;
        ModalityScore { features: vec![mean, min, exact] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::{Asr, AsrProfile};
    use mvp_audio::synth::{SpeakerProfile, Synthesizer};
    use mvp_phonetics::Lexicon;

    fn scored(wave: &Waveform) -> Vec<f64> {
        let asr = AsrProfile::Ds0.trained();
        let target = asr.transcribe(wave);
        VariantInstability::default().score(&ModalityInput::new(&asr, wave, &target)).features
    }

    #[test]
    fn benign_speech_is_noise_stable() {
        let synth = Synthesizer::new(16_000);
        let (wave, _) = synth.synthesize(
            &Lexicon::builtin(),
            "the man walked the street",
            &SpeakerProfile::default(),
        );
        let f = scored(&wave);
        assert_eq!(f.len(), 3);
        assert!(f[0] > 0.6, "mean agreement {}", f[0]);
        assert!(f[1] <= f[0], "min {} must not exceed mean {}", f[1], f[0]);
        assert!((0.0..=1.0).contains(&f[2]), "exact fraction {}", f[2]);
    }

    #[test]
    fn empty_audio_is_neutral() {
        assert_eq!(scored(&Waveform::from_samples(Vec::new(), 16_000)), vec![1.0; 3]);
    }

    #[test]
    fn seeded_scoring_is_deterministic() {
        let synth = Synthesizer::new(16_000);
        let (wave, _) =
            synth.synthesize(&Lexicon::builtin(), "turn on the light", &SpeakerProfile::default());
        assert_eq!(scored(&wave), scored(&wave));
    }
}
