#![warn(missing_docs)]

//! mvp-modality: detection modalities beyond transcription similarity.
//!
//! The paper's detector reduces every audio to one signal — cross-ASR
//! transcription similarity. The related work contributes three further
//! families of AE evidence that need nothing the workspace does not
//! already compute:
//!
//! - [`TransformCompare`] (WaveGuard): re-transcribe the audio after
//!   small audio-domain transforms (quantization, resampling, low-pass)
//!   and measure transcription drift. Benign speech survives the
//!   transforms; brittle adversarial perturbations often do not.
//! - [`DistributionFeatures`] (DistriBlock / logit noising): summarise
//!   the target ASR's output distribution — per-frame entropy, max
//!   softmax probability, top-1/top-2 margin — and measure decode
//!   stability under seeded logit noise.
//! - [`VariantInstability`] (FraudWhistler): transcribe N seeded noisy
//!   copies of the input and measure prediction instability; the
//!   statistics feed `mvp_ml::OneClassScorer` when fused.
//!
//! Every modality implements the [`Modality`] trait and is addressed by a
//! [`ModalityKind`]; a [`ModalityRegistry`] evaluates an ordered set of
//! modalities with per-modality spans and timings. **Feature
//! orientation:** every feature is scaled so that *higher means more
//! benign-stable* (matching the similarity scores' geometry), so one
//! classifier convention covers the fused vector and ROC analyses can
//! treat low scores as adversarial everywhere.
//!
//! This crate sits *below* `mvp-ears` in the workspace: the detection
//! system owns a registry and fuses modality features with its
//! similarity scores, so the crate only depends on the audio/ASR/text
//! layers.

pub mod distribution;
pub mod instability;
pub mod transform;

pub use distribution::DistributionFeatures;
pub use instability::VariantInstability;
pub use transform::{AudioTransform, TransformCompare};

use mvp_asr::TrainedAsr;
use mvp_audio::Waveform;
use mvp_phonetics::{Encoder as PhoneticEncoder, PhoneticEncoder as _};
use mvp_textsim::Similarity;

/// Relative evaluation cost of a modality, used by serving layers to
/// order work and assign deadline budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostTier {
    /// One extra acoustic-model pass, no extra transcriptions.
    Cheap,
    /// A handful of extra transcriptions (one per transform).
    Moderate,
    /// Noise synthesis plus one transcription per perturbed variant.
    Heavy,
}

impl CostTier {
    /// Stable lowercase name for tables and audit records.
    pub fn name(self) -> &'static str {
        match self {
            CostTier::Cheap => "cheap",
            CostTier::Moderate => "moderate",
            CostTier::Heavy => "heavy",
        }
    }
}

/// The modality families this crate ships, addressable by name and by a
/// stable persistence tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModalityKind {
    /// Transform-and-compare re-transcription drift.
    Transform,
    /// Output-distribution features over the logit matrix.
    Distribution,
    /// Prediction instability across seeded perturbed variants.
    Instability,
}

impl ModalityKind {
    /// Every kind, in registry/fusion order.
    pub const ALL: [ModalityKind; 3] =
        [ModalityKind::Transform, ModalityKind::Distribution, ModalityKind::Instability];

    /// Stable lowercase name (CLI `--modalities` values, audit records).
    pub fn name(self) -> &'static str {
        match self {
            ModalityKind::Transform => "transform",
            ModalityKind::Distribution => "distribution",
            ModalityKind::Instability => "instability",
        }
    }

    /// Parses a [`name`](Self::name); `None` for unknown names.
    pub fn parse(name: &str) -> Option<ModalityKind> {
        ModalityKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Stable persistence tag (`FusionLayout` / snapshot encoding).
    pub fn tag(self) -> u8 {
        match self {
            ModalityKind::Transform => 1,
            ModalityKind::Distribution => 2,
            ModalityKind::Instability => 3,
        }
    }

    /// Inverse of [`tag`](Self::tag); `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<ModalityKind> {
        ModalityKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Feature width of this kind's default configuration — the widths
    /// persisted fusion layouts rely on.
    pub fn feature_dim(self) -> usize {
        match self {
            ModalityKind::Transform => transform::TransformCompare::default().feature_dim(),
            ModalityKind::Distribution => {
                distribution::DistributionFeatures::default().feature_dim()
            }
            ModalityKind::Instability => instability::VariantInstability::default().feature_dim(),
        }
    }

    /// Builds this kind's default-configured modality.
    pub fn build(self) -> Box<dyn Modality> {
        match self {
            ModalityKind::Transform => Box::new(transform::TransformCompare::default()),
            ModalityKind::Distribution => Box::new(distribution::DistributionFeatures::default()),
            ModalityKind::Instability => Box::new(instability::VariantInstability::default()),
        }
    }

    /// The static span name under which this modality is traced.
    pub fn span_name(self) -> &'static str {
        match self {
            ModalityKind::Transform => "modality.transform",
            ModalityKind::Distribution => "modality.distribution",
            ModalityKind::Instability => "modality.instability",
        }
    }
}

impl std::fmt::Display for ModalityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a modality may consult for one audio: the waveform, the
/// target ASR, and the target's (already computed) transcription.
#[derive(Debug, Clone, Copy)]
pub struct ModalityInput<'a> {
    /// The target recogniser (owns front end, acoustic model, decoder).
    pub asr: &'a TrainedAsr,
    /// The audio under test.
    pub wave: &'a Waveform,
    /// The target ASR's transcription of `wave`, computed by the caller
    /// (detection systems and serving layers always have it already).
    pub target_text: &'a str,
}

impl<'a> ModalityInput<'a> {
    /// Bundles the borrowed pieces.
    pub fn new(asr: &'a TrainedAsr, wave: &'a Waveform, target_text: &'a str) -> ModalityInput<'a> {
        ModalityInput { asr, wave, target_text }
    }
}

/// One modality's verdict evidence for one audio.
#[derive(Debug, Clone, PartialEq)]
pub struct ModalityScore {
    /// Fixed-width feature block, higher = more benign-stable; width is
    /// the modality's [`feature_dim`](Modality::feature_dim).
    pub features: Vec<f64>,
}

/// A detection modality: reduces one audio to a fixed-width block of
/// stability features.
pub trait Modality: Send + Sync {
    /// Stable lowercase name.
    fn name(&self) -> &'static str;
    /// The kind this modality instantiates.
    fn kind(&self) -> ModalityKind;
    /// Relative evaluation cost.
    fn cost(&self) -> CostTier;
    /// Width of the feature block [`score`](Self::score) produces.
    fn feature_dim(&self) -> usize;
    /// Static names of the features, in block order.
    fn feature_names(&self) -> &'static [&'static str];
    /// Scores one audio. Deterministic: same input, same features.
    fn score(&self, input: &ModalityInput<'_>) -> ModalityScore;
}

/// A scored modality with its evaluation time, as produced by
/// [`ModalityRegistry::score_all`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModalityOutcome {
    /// Which modality produced the block.
    pub kind: ModalityKind,
    /// The modality's stable name (duplicated for convenience in audit
    /// records and tables).
    pub name: &'static str,
    /// The feature block, higher = more benign-stable.
    pub features: Vec<f64>,
    /// Wall time spent scoring this modality.
    pub elapsed_us: u64,
}

/// An ordered, duplicate-free set of modalities evaluated together.
///
/// Iteration order is registration order; fused feature layouts depend
/// on it, so a registry restored from a snapshot must be built from the
/// same kind sequence.
#[derive(Default)]
pub struct ModalityRegistry {
    entries: Vec<Box<dyn Modality>>,
}

impl std::fmt::Debug for ModalityRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModalityRegistry").field("kinds", &self.kinds()).finish()
    }
}

impl ModalityRegistry {
    /// An empty registry (similarity-only detection).
    pub fn empty() -> ModalityRegistry {
        ModalityRegistry { entries: Vec::new() }
    }

    /// Builds a registry of default-configured modalities in the given
    /// order.
    ///
    /// # Panics
    ///
    /// Panics on duplicate kinds.
    pub fn from_kinds(kinds: &[ModalityKind]) -> ModalityRegistry {
        let mut registry = ModalityRegistry::empty();
        for &kind in kinds {
            registry.push(kind.build());
        }
        registry
    }

    /// Appends a modality.
    ///
    /// # Panics
    ///
    /// Panics if its kind is already registered.
    pub fn push(&mut self, modality: Box<dyn Modality>) {
        assert!(
            self.entries.iter().all(|m| m.kind() != modality.kind()),
            "modality {} registered twice",
            modality.name()
        );
        self.entries.push(modality);
    }

    /// Number of registered modalities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no modality is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered modalities, in evaluation order.
    pub fn modalities(&self) -> &[Box<dyn Modality>] {
        &self.entries
    }

    /// The registered kinds, in evaluation order.
    pub fn kinds(&self) -> Vec<ModalityKind> {
        self.entries.iter().map(|m| m.kind()).collect()
    }

    /// Total width of the concatenated feature blocks.
    pub fn feature_dim(&self) -> usize {
        self.entries.iter().map(|m| m.feature_dim()).sum()
    }

    /// Scores every registered modality, each under its own trace span
    /// and with its own wall-time measurement.
    pub fn score_all(&self, input: &ModalityInput<'_>) -> Vec<ModalityOutcome> {
        self.entries.iter().map(|m| Self::score_one(m.as_ref(), input)).collect()
    }

    /// Scores the subset of registered modalities selected by `keep`
    /// (called with each modality's kind), preserving registry order.
    pub fn score_where(
        &self,
        input: &ModalityInput<'_>,
        mut keep: impl FnMut(ModalityKind) -> bool,
    ) -> Vec<ModalityOutcome> {
        self.entries
            .iter()
            .filter(|m| keep(m.kind()))
            .map(|m| Self::score_one(m.as_ref(), input))
            .collect()
    }

    fn score_one(modality: &dyn Modality, input: &ModalityInput<'_>) -> ModalityOutcome {
        let _span = mvp_obs::span!(modality.kind().span_name());
        let started = std::time::Instant::now();
        let score = modality.score(input);
        debug_assert_eq!(score.features.len(), modality.feature_dim());
        ModalityOutcome {
            kind: modality.kind(),
            name: modality.name(),
            features: score.features,
            elapsed_us: started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        }
    }
}

/// The drift similarity every modality uses to compare transcriptions:
/// Jaro-Winkler over Metaphone encodings, mirroring the detection
/// system's default `PE_JaroWinkler` similarity method (this crate sits
/// below `mvp-ears`, so it cannot borrow the method type itself).
///
/// Two empty transcriptions are identical (similarity 1).
pub fn drift_similarity(a: &str, b: &str) -> f64 {
    let ea = PhoneticEncoder::Metaphone.encode_sentence(a);
    let eb = PhoneticEncoder::Metaphone.encode_sentence(b);
    if ea.is_empty() && eb.is_empty() {
        return 1.0;
    }
    Similarity::JaroWinkler.score(&ea, &eb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_tags_round_trip() {
        for kind in ModalityKind::ALL {
            assert_eq!(ModalityKind::parse(kind.name()), Some(kind));
            assert_eq!(ModalityKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ModalityKind::parse("similarity"), None);
        assert_eq!(ModalityKind::from_tag(0), None);
        assert_eq!(ModalityKind::from_tag(9), None);
    }

    #[test]
    fn default_builds_match_declared_dims() {
        for kind in ModalityKind::ALL {
            let m = kind.build();
            assert_eq!(m.kind(), kind);
            assert_eq!(m.feature_dim(), kind.feature_dim());
            assert_eq!(m.feature_names().len(), m.feature_dim(), "{kind}");
        }
    }

    #[test]
    fn registry_orders_and_sums_dims() {
        let registry = ModalityRegistry::from_kinds(&ModalityKind::ALL);
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.kinds(), ModalityKind::ALL.to_vec());
        assert_eq!(
            registry.feature_dim(),
            ModalityKind::ALL.iter().map(|k| k.feature_dim()).sum::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn registry_rejects_duplicates() {
        ModalityRegistry::from_kinds(&[ModalityKind::Transform, ModalityKind::Transform]);
    }

    #[test]
    fn drift_similarity_bounds() {
        assert_eq!(drift_similarity("", ""), 1.0);
        assert_eq!(drift_similarity("open the door", "open the door"), 1.0);
        let s = drift_similarity("open the door", "close the window");
        assert!((0.0..1.0).contains(&s), "{s}");
    }
}
