//! Levenshtein edit distance and its normalised similarity form.

/// Computes the Levenshtein (edit) distance between `a` and `b` over Unicode
/// scalar values, using the classic two-row dynamic program.
///
/// ```
/// use mvp_textsim::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalised Levenshtein similarity: `1 - dist / max(|a|, |b|)`.
///
/// Two empty strings are defined to have similarity `1`.
///
/// ```
/// use mvp_textsim::levenshtein_similarity;
/// assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
/// assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
/// ```
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("a", "a"), 0);
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
    }

    proptest! {
        #[test]
        fn distance_is_metric_like(a in "[a-c]{0,12}", b in "[a-c]{0,12}", c in "[a-c]{0,12}") {
            let ab = levenshtein(&a, &b);
            let ba = levenshtein(&b, &a);
            prop_assert_eq!(ab, ba);
            // triangle inequality
            prop_assert!(levenshtein(&a, &c) <= ab + levenshtein(&b, &c));
            // identity of indiscernibles
            prop_assert_eq!(levenshtein(&a, &a), 0);
            if ab == 0 { prop_assert_eq!(&a, &b); }
        }

        #[test]
        fn distance_bounded_by_longer(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
            let d = levenshtein(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d <= la.max(lb));
            prop_assert!(d >= la.abs_diff(lb));
        }
    }
}
