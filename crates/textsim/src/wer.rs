//! Word-error-rate and word-level alignment.
//!
//! Section V-J of the paper constructs non-targeted AEs by adding noise
//! until the transcription's WER against the reference exceeds 80 %; the
//! evaluation harness uses this module both for that construction and for
//! validating the simulated ASR profiles' benign accuracy.

/// One edit operation in a word-level alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignOp {
    /// Reference word matched hypothesis word.
    Correct,
    /// Hypothesis word replaced a reference word.
    Substitution,
    /// Reference word missing from hypothesis.
    Deletion,
    /// Extra hypothesis word.
    Insertion,
}

/// Computes the minimum-edit word alignment between `reference` and
/// `hypothesis` token slices.
///
/// Ties are broken preferring substitutions, then deletions, then
/// insertions, matching the standard NIST sclite convention closely enough
/// for WER purposes.
pub fn word_alignment(reference: &[String], hypothesis: &[String]) -> Vec<AlignOp> {
    let n = reference.len();
    let m = hypothesis.len();
    // dp[i][j] = edit distance between reference[..i] and hypothesis[..j].
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = dp[i - 1][j - 1] + usize::from(reference[i - 1] != hypothesis[j - 1]);
            dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
        }
    }
    // Backtrace.
    let mut ops = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i > 0 && j > 0 {
            let cost = usize::from(reference[i - 1] != hypothesis[j - 1]);
            if dp[i][j] == dp[i - 1][j - 1] + cost {
                ops.push(if cost == 0 { AlignOp::Correct } else { AlignOp::Substitution });
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && dp[i][j] == dp[i - 1][j] + 1 {
            ops.push(AlignOp::Deletion);
            i -= 1;
        } else {
            ops.push(AlignOp::Insertion);
            j -= 1;
        }
    }
    ops.reverse();
    ops
}

/// Word error rate of `hypothesis` against `reference`:
/// `(S + D + I) / N` where `N` is the reference word count.
///
/// An empty reference yields `0.0` for an empty hypothesis and `1.0`
/// otherwise (every inserted word is an error, capped at 1 per convention of
/// bounded scores used elsewhere in this workspace — note real WER may
/// exceed 1; use [`word_alignment`] if you need raw counts).
///
/// ```
/// use mvp_textsim::wer;
/// let w = wer("turn on the kitchen light", "turn off the light");
/// assert!(w > 0.3 && w < 0.7);
/// assert_eq!(wer("hello world", "hello world"), 0.0);
/// ```
pub fn wer(reference: &str, hypothesis: &str) -> f64 {
    let r = crate::tokenize::tokens(reference);
    let h = crate::tokenize::tokens(hypothesis);
    if r.is_empty() {
        return if h.is_empty() { 0.0 } else { 1.0 };
    }
    let ops = word_alignment(&r, &h);
    let errors = ops.iter().filter(|op| !matches!(op, AlignOp::Correct)).count();
    errors as f64 / r.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toks(s: &str) -> Vec<String> {
        crate::tokenize::tokens(s)
    }

    #[test]
    fn perfect_hypothesis_zero_wer() {
        assert_eq!(wer("open the front door", "open the front door"), 0.0);
    }

    #[test]
    fn all_substitutions() {
        assert_eq!(wer("a b c", "x y z"), 1.0);
    }

    #[test]
    fn deletion_counts() {
        assert!((wer("a b c d", "a c d") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn insertion_counts() {
        assert!((wer("a b", "a x b") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alignment_ops_roundtrip_lengths() {
        let r = toks("the cat sat on the mat");
        let h = toks("the cat on a mat");
        let ops = word_alignment(&r, &h);
        let ref_consumed = ops.iter().filter(|o| !matches!(o, AlignOp::Insertion)).count();
        let hyp_consumed = ops.iter().filter(|o| !matches!(o, AlignOp::Deletion)).count();
        assert_eq!(ref_consumed, r.len());
        assert_eq!(hyp_consumed, h.len());
    }

    proptest! {
        #[test]
        fn wer_zero_iff_equal_tokens(a in "[a-c]( [a-c]){0,6}", b in "[a-c]( [a-c]){0,6}") {
            let w = wer(&a, &b);
            prop_assert!(w >= 0.0);
            if toks(&a) == toks(&b) {
                prop_assert_eq!(w, 0.0);
            } else {
                prop_assert!(w > 0.0);
            }
        }

        #[test]
        fn alignment_consumes_everything(
            a in proptest::collection::vec("[a-c]{1,3}", 0..8),
            b in proptest::collection::vec("[a-c]{1,3}", 0..8),
        ) {
            let ops = word_alignment(&a, &b);
            let rc = ops.iter().filter(|o| !matches!(o, AlignOp::Insertion)).count();
            let hc = ops.iter().filter(|o| !matches!(o, AlignOp::Deletion)).count();
            prop_assert_eq!(rc, a.len());
            prop_assert_eq!(hc, b.len());
        }
    }
}
