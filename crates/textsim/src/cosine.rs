//! Cosine similarity over term-frequency vectors of word tokens.

use std::collections::HashMap;

use crate::tokenize::tokens;

fn term_freq(s: &str) -> HashMap<String, f64> {
    let mut tf = HashMap::new();
    for t in tokens(s) {
        *tf.entry(t).or_insert(0.0) += 1.0;
    }
    tf
}

/// Cosine similarity of the token term-frequency vectors of `a` and `b`.
///
/// Two empty transcriptions score `1`; an empty vs non-empty pair scores `0`.
///
/// ```
/// use mvp_textsim::cosine_similarity;
/// let s = cosine_similarity("play some music", "play some jazz music");
/// assert!(s > 0.8 && s < 1.0);
/// ```
pub fn cosine_similarity(a: &str, b: &str) -> f64 {
    let ta = term_freq(a);
    let tb = term_freq(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dot: f64 = ta.iter().filter_map(|(k, va)| tb.get(k).map(|vb| va * vb)).sum();
    let na: f64 = ta.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = tb.values().map(|v| v * v).sum::<f64>().sqrt();
    (dot / (na * nb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orthogonal_is_zero() {
        assert_eq!(cosine_similarity("red green", "blue yellow"), 0.0);
    }

    #[test]
    fn scaled_multiplicity_is_one() {
        // TF vectors that are scalar multiples have cosine 1.
        assert!((cosine_similarity("go go", "go") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_half() {
        // "a b" vs "a c": dot = 1, norms = sqrt(2) each -> 0.5.
        assert!((cosine_similarity("a b", "a c") - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn bounded_symmetric(a in "[a-d ]{0,30}", b in "[a-d ]{0,30}") {
            let s = cosine_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - cosine_similarity(&b, &a)).abs() < 1e-12);
        }
    }
}
