#![warn(missing_docs)]

//! String-similarity measures used by the MVP-EARS similarity-calculation
//! component.
//!
//! The detection system of the paper compares the transcription produced by
//! the *target* ASR against each *auxiliary* ASR transcription and reduces
//! every pair to a similarity score in `[0, 1]`. Section V-D of the paper
//! evaluates Cosine similarity, the Jaccard index and the Jaro-Winkler edit
//! distance (each optionally applied on phonetic encodings); this crate
//! implements those plus Levenshtein, Sørensen–Dice and word-error-rate,
//! which the evaluation harness uses to construct non-targeted AEs and
//! to validate decoder quality.
//!
//! # Examples
//!
//! ```
//! use mvp_textsim::{jaro_winkler, Similarity};
//!
//! let s = jaro_winkler("open the front door", "open the back door");
//! assert!(s > 0.8 && s < 1.0);
//!
//! // Every measure is also available through the `Similarity` enum, which is
//! // what the detection system stores in its configuration.
//! let m = Similarity::JaroWinkler;
//! assert_eq!(m.score("hello", "hello"), 1.0);
//! ```

pub mod cosine;
pub mod dice;
pub mod jaccard;
pub mod jaro;
pub mod levenshtein;
pub mod tokenize;
pub mod wer;

pub use cosine::cosine_similarity;
pub use dice::dice_coefficient;
pub use jaccard::{jaccard_chars, jaccard_tokens};
pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{levenshtein, levenshtein_similarity};
pub use tokenize::{char_ngrams, tokens};
pub use wer::{wer, word_alignment, AlignOp};

/// A string-similarity measure selectable at runtime.
///
/// All variants produce a score in `[0, 1]` where `1` means identical and
/// `0` means maximally dissimilar; this is the contract the binary
/// classifier of the detection system relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Similarity {
    /// Cosine similarity over word-token term-frequency vectors.
    Cosine,
    /// Jaccard index over word-token sets.
    Jaccard,
    /// Jaro-Winkler string distance (the method the paper adopts).
    JaroWinkler,
    /// Normalised Levenshtein similarity (`1 - dist/max_len`).
    Levenshtein,
    /// Sørensen–Dice coefficient over character bigrams.
    Dice,
}

impl Similarity {
    /// All measures, in the order they appear in the paper's Table III.
    pub const ALL: [Similarity; 5] = [
        Similarity::Cosine,
        Similarity::Jaccard,
        Similarity::JaroWinkler,
        Similarity::Levenshtein,
        Similarity::Dice,
    ];

    /// Computes the similarity of `a` and `b` under this measure.
    ///
    /// ```
    /// use mvp_textsim::Similarity;
    /// assert!(Similarity::Cosine.score("turn on the light", "turn off the light") > 0.5);
    /// ```
    pub fn score(self, a: &str, b: &str) -> f64 {
        match self {
            Similarity::Cosine => cosine_similarity(a, b),
            Similarity::Jaccard => jaccard_tokens(a, b),
            Similarity::JaroWinkler => jaro_winkler(a, b),
            Similarity::Levenshtein => levenshtein_similarity(a, b),
            Similarity::Dice => dice_coefficient(a, b),
        }
    }

    /// A short stable name used in experiment-table output.
    pub fn name(self) -> &'static str {
        match self {
            Similarity::Cosine => "Cosine",
            Similarity::Jaccard => "Jaccard",
            Similarity::JaroWinkler => "JaroWinkler",
            Similarity::Levenshtein => "Levenshtein",
            Similarity::Dice => "Dice",
        }
    }
}

impl std::fmt::Display for Similarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_measures_identity_is_one() {
        for m in Similarity::ALL {
            assert_eq!(m.score("the quick brown fox", "the quick brown fox"), 1.0, "{m}");
        }
    }

    #[test]
    fn all_measures_disjoint_is_low() {
        // Character-level measures still see the shared space / length
        // structure, so the bound is loose; token-set measures must be 0.
        for m in Similarity::ALL {
            let s = m.score("aaaa bbbb", "cccc dddd");
            assert!(s <= 0.45, "{m} gave {s}");
        }
        assert_eq!(Similarity::Jaccard.score("aaaa bbbb", "cccc dddd"), 0.0);
        assert_eq!(Similarity::Cosine.score("aaaa bbbb", "cccc dddd"), 0.0);
        assert_eq!(Similarity::Dice.score("aaaa bbbb", "cccc dddd"), 0.0);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Similarity::JaroWinkler.to_string(), "JaroWinkler");
    }

    proptest! {
        #[test]
        fn scores_bounded_and_symmetric(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
            for m in Similarity::ALL {
                let s1 = m.score(&a, &b);
                let s2 = m.score(&b, &a);
                prop_assert!((0.0..=1.0).contains(&s1), "{m}: {s1}");
                prop_assert!((s1 - s2).abs() < 1e-12, "{m} not symmetric: {s1} vs {s2}");
            }
        }

        #[test]
        fn identity_is_one_prop(a in "[a-z]{1,20}( [a-z]{1,20}){0,5}") {
            for m in Similarity::ALL {
                prop_assert!((m.score(&a, &a) - 1.0).abs() < 1e-12, "{m}");
            }
        }
    }
}
