//! Jaro and Jaro-Winkler string similarity.
//!
//! Jaro-Winkler is the measure the paper finally adopts (combined with
//! phonetic encoding) because it achieved the highest detection accuracy in
//! the Table III ablation.

/// Computes the Jaro similarity of `a` and `b` in `[0, 1]`.
///
/// Matching characters must agree and be within half the length of the
/// longer string of each other; transpositions are counted between matched
/// characters that disagree in order.
///
/// ```
/// use mvp_textsim::jaro;
/// assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-5);
/// assert_eq!(jaro("", ""), 1.0);
/// assert_eq!(jaro("abc", ""), 0.0);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    let mut b_match_mask = vec![false; b.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                b_match_mask[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    let b_matches: Vec<char> =
        b.iter().zip(&b_match_mask).filter_map(|(&c, &used)| used.then_some(c)).collect();
    let transpositions = a_matches.iter().zip(&b_matches).filter(|(x, y)| x != y).count() / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Computes the Jaro-Winkler similarity with the standard prefix scale
/// `p = 0.1` and maximum prefix length 4.
///
/// Strings sharing a common prefix are boosted toward 1, which rewards
/// transcriptions that agree on the opening words — typical of benign audio
/// run through diverse ASRs.
///
/// ```
/// use mvp_textsim::jaro_winkler;
/// assert!(jaro_winkler("martha", "marhta") > 0.96);
/// assert_eq!(jaro_winkler("same", "same"), 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const PREFIX_SCALE: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(MAX_PREFIX).take_while(|(x, y)| x == y).count();
    (j + prefix as f64 * PREFIX_SCALE * (1.0 - j)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn textbook_values() {
        assert!((jaro("dixon", "dicksonx") - 0.766667).abs() < 1e-5);
        assert!((jaro("jellyfish", "smellyfish") - 0.896296).abs() < 1e-5);
        assert!((jaro_winkler("dwayne", "duane") - 0.84).abs() < 0.01);
    }

    #[test]
    fn no_common_chars_is_zero() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn winkler_at_least_jaro() {
        let pairs = [("trate", "trace"), ("open door", "open the door"), ("a", "ab")];
        for (a, b) in pairs {
            assert!(jaro_winkler(a, b) >= jaro(a, b));
        }
    }

    proptest! {
        #[test]
        fn bounded_symmetric(a in "[a-f]{0,20}", b in "[a-f]{0,20}") {
            let s = jaro(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - jaro(&b, &a)).abs() < 1e-12);
            let w = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&w));
            prop_assert!(w >= s - 1e-12);
        }

        #[test]
        fn identical_is_one(a in "[a-z]{1,20}") {
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }
}
