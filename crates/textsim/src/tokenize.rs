//! Tokenisation helpers shared by the similarity measures.

/// Splits `s` into lowercase word tokens.
///
/// Tokens are maximal runs of alphanumeric characters or apostrophes; all
/// punctuation the cloud ASRs of the paper emit (`.`, `,`, `?`) is stripped,
/// which mirrors the paper's normalisation before similarity calculation.
///
/// ```
/// use mvp_textsim::tokens;
/// assert_eq!(tokens("I wish you wouldn't."), vec!["i", "wish", "you", "wouldn't"]);
/// ```
pub fn tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() || ch == '\'' {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Returns the character `n`-grams of `s` (after lowercasing and removing
/// whitespace), preserving multiplicity.
///
/// Strings shorter than `n` yield a single truncated gram so that non-empty
/// inputs never produce an empty gram set.
///
/// ```
/// use mvp_textsim::char_ngrams;
/// assert_eq!(char_ngrams("abc d", 2), vec!["ab", "bc", "cd"]);
/// assert_eq!(char_ngrams("a", 2), vec!["a"]);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let chars: Vec<char> =
        s.chars().filter(|c| !c.is_whitespace()).flat_map(|c| c.to_lowercase()).collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() < n {
        return vec![chars.iter().collect()];
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_strip_punctuation_and_case() {
        assert_eq!(tokens("Open, the FRONT door!"), vec!["open", "the", "front", "door"]);
    }

    #[test]
    fn tokens_empty_input() {
        assert!(tokens("").is_empty());
        assert!(tokens("  ...  ").is_empty());
    }

    #[test]
    fn tokens_keep_apostrophes() {
        assert_eq!(tokens("don't"), vec!["don't"]);
    }

    #[test]
    fn tokens_handle_unicode_case_folding() {
        assert_eq!(tokens("Straße RENNEN"), vec!["straße", "rennen"]);
        assert_eq!(tokens("İstanbul"), vec!["i\u{307}stanbul"]);
    }

    #[test]
    fn ngrams_cross_word_boundaries() {
        // Whitespace is removed before forming grams.
        assert_eq!(char_ngrams("to do", 3), vec!["tod", "odo"]);
    }

    #[test]
    fn ngrams_empty() {
        assert!(char_ngrams("", 2).is_empty());
        assert!(char_ngrams("   ", 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ngrams_zero_panics() {
        char_ngrams("abc", 0);
    }
}
