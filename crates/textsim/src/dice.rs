//! Sørensen–Dice coefficient over character bigrams.

use std::collections::HashMap;

use crate::tokenize::char_ngrams;

/// Sørensen–Dice coefficient of the character-bigram multisets of `a` and
/// `b`: `2 |A ∩ B| / (|A| + |B|)`.
///
/// Multiplicity is respected (multiset intersection). Two empty strings
/// score `1`.
///
/// ```
/// use mvp_textsim::dice_coefficient;
/// assert!((dice_coefficient("night", "nacht") - 0.25).abs() < 1e-12);
/// ```
pub fn dice_coefficient(a: &str, b: &str) -> f64 {
    let ga = char_ngrams(a, 2);
    let gb = char_ngrams(b, 2);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for g in &ga {
        *counts.entry(g.as_str()).or_insert(0) += 1;
    }
    let mut inter = 0usize;
    for g in &gb {
        if let Some(c) = counts.get_mut(g.as_str()) {
            if *c > 0 {
                *c -= 1;
                inter += 1;
            }
        }
    }
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_is_one() {
        assert_eq!(dice_coefficient("sequence", "sequence"), 1.0);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(dice_coefficient("aaaa", "bbbb"), 0.0);
    }

    #[test]
    fn multiset_semantics() {
        // "aaa" has bigrams {aa, aa}; "aa" has {aa}: 2*1/(2+1).
        assert!((dice_coefficient("aaa", "aa") - 2.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn bounded_symmetric(a in "[a-d]{0,20}", b in "[a-d]{0,20}") {
            let s = dice_coefficient(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - dice_coefficient(&b, &a)).abs() < 1e-12);
        }
    }
}
