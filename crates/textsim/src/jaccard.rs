//! Jaccard index over token sets and character n-gram sets.

use std::collections::HashSet;

use crate::tokenize::{char_ngrams, tokens};

fn jaccard_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Jaccard index over word-token sets: `|A ∩ B| / |A ∪ B|`.
///
/// Two empty transcriptions are defined to be identical (score `1`), which
/// matters for silent audio where every ASR outputs nothing.
///
/// ```
/// use mvp_textsim::jaccard_tokens;
/// assert_eq!(jaccard_tokens("open the door", "close the door"), 0.5);
/// ```
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = tokens(a).into_iter().collect();
    let sb: HashSet<String> = tokens(b).into_iter().collect();
    jaccard_sets(&sa, &sb)
}

/// Jaccard index over character `n`-gram sets, useful for transcription
/// pairs that differ only in word segmentation.
///
/// ```
/// use mvp_textsim::jaccard_chars;
/// assert!(jaccard_chars("nightrate", "night rate", 2) > 0.9);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn jaccard_chars(a: &str, b: &str, n: usize) -> f64 {
    let sa: HashSet<String> = char_ngrams(a, n).into_iter().collect();
    let sb: HashSet<String> = char_ngrams(b, n).into_iter().collect();
    jaccard_sets(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(jaccard_tokens("alpha beta", "gamma delta"), 0.0);
    }

    #[test]
    fn repeated_words_ignored() {
        // Set semantics: multiplicity does not matter.
        assert_eq!(jaccard_tokens("go go go", "go"), 1.0);
    }

    #[test]
    fn empty_pairs() {
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("word", ""), 0.0);
    }

    #[test]
    fn char_grams_tolerate_segmentation() {
        let joined = jaccard_chars("turnon", "turn on", 2);
        let token_level = jaccard_tokens("turnon", "turn on");
        assert!(joined > token_level);
    }

    proptest! {
        #[test]
        fn bounded_symmetric(a in "[a-d ]{0,30}", b in "[a-d ]{0,30}") {
            let s = jaccard_tokens(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - jaccard_tokens(&b, &a)).abs() < 1e-12);
        }
    }
}
