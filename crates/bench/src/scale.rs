//! Experiment scale selection.

/// Dataset sizes for one experiment run.
///
/// The paper's Table II uses 2400 benign samples, 1800 white-box AEs and
/// 600 black-box AEs (a 4:3:1 ratio, preserved at every scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Human-readable name (also the on-disk cache directory).
    pub name: &'static str,
    /// Benign samples (LibriSpeech dev_clean substitute).
    pub benign: usize,
    /// White-box AEs requested.
    pub whitebox: usize,
    /// Black-box AEs requested.
    pub blackbox: usize,
    /// Hypothetical MAE AEs synthesized per type (Table IX).
    pub mae_per_type: usize,
    /// CommonVoice-substitute samples for the non-targeted study (§V-J).
    pub commonvoice: usize,
    /// Cross-validation folds (the paper uses 5).
    pub folds: usize,
}

impl Scale {
    /// CI smoke scale: everything in seconds.
    pub const TINY: Scale = Scale {
        name: "tiny",
        benign: 16,
        whitebox: 12,
        blackbox: 4,
        mae_per_type: 60,
        commonvoice: 6,
        folds: 4,
    };

    /// Default scale: minutes of one-time generation on a single core.
    pub const QUICK: Scale = Scale {
        name: "quick",
        benign: 80,
        whitebox: 60,
        blackbox: 20,
        mae_per_type: 400,
        commonvoice: 30,
        folds: 5,
    };

    /// The paper's scale (Table II counts). Expect hours of generation.
    pub const FULL: Scale = Scale {
        name: "full",
        benign: 2_400,
        whitebox: 1_800,
        blackbox: 600,
        mae_per_type: 2_400,
        commonvoice: 118,
        folds: 5,
    };

    /// Reads `MVP_EARS_SCALE` (`tiny` / `quick` / `full`), defaulting to
    /// [`Scale::QUICK`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown scale name, listing the valid ones.
    pub fn from_env() -> Scale {
        match std::env::var("MVP_EARS_SCALE").as_deref() {
            Ok("tiny") => Scale::TINY,
            Ok("quick") | Err(_) => Scale::QUICK,
            Ok("full") => Scale::FULL,
            Ok(other) => panic!("unknown MVP_EARS_SCALE {other:?}; use tiny, quick or full"),
        }
    }

    /// Total AE count.
    pub fn total_aes(&self) -> usize {
        self.whitebox + self.blackbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_table_two() {
        for s in [Scale::QUICK, Scale::FULL] {
            // 4 : 3 : 1 benign : white-box : black-box.
            assert_eq!(s.benign * 3, s.whitebox * 4, "{}", s.name);
            assert_eq!(s.whitebox, s.blackbox * 3, "{}", s.name);
        }
        assert_eq!(Scale::FULL.benign, 2_400);
    }

    #[test]
    fn names_unique() {
        let names = [Scale::TINY.name, Scale::QUICK.name, Scale::FULL.name];
        let set: std::collections::HashSet<_> = names.into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}
