//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let mut first = true;
            for (cell, &w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Columns align: "value" column starts at the same offset everywhere.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn ragged_row_rejected() {
        Table::new(["a", "b"]).row(["only one"]);
    }
}
