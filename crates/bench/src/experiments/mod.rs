//! One module per experiment group; every public function prints one
//! paper artifact (table or figure series) to stdout.

pub mod ablation;
pub mod adaptive;
pub mod artifact;
pub mod classifiers;
pub mod data;
pub mod dataplane;
pub mod mae;
pub mod modality;
pub mod obs;
pub mod perf;
pub mod quant;
pub mod serve;
pub mod similarity;
pub mod transfer;
pub mod unseen;

use mvp_asr::AsrProfile;

/// The single-auxiliary systems of Tables IV/VII (paper order).
pub const SINGLE_AUX: [[AsrProfile; 1]; 3] =
    [[AsrProfile::Ds1], [AsrProfile::Gcs], [AsrProfile::At]];

/// The multi-auxiliary systems of Tables III/V/VIII (paper order).
pub const MULTI_AUX: [&[AsrProfile]; 4] = [
    &[AsrProfile::Ds1, AsrProfile::Gcs],
    &[AsrProfile::Ds1, AsrProfile::At],
    &[AsrProfile::Gcs, AsrProfile::At],
    &[AsrProfile::Ds1, AsrProfile::Gcs, AsrProfile::At],
];

/// The three-auxiliary system used by the MAE experiments (§V-H).
pub const THREE_AUX: [AsrProfile; 3] = [AsrProfile::Ds1, AsrProfile::Gcs, AsrProfile::At];
