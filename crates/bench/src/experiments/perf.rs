//! §V-I: detection time overhead on DS0+{DS1}.

use std::time::Instant;

use mvp_asr::{Asr, AsrProfile};
use mvp_ears::{DetectionSystem, SimilarityMethod};
use mvp_ml::ClassifierKind;

use crate::context::ExperimentContext;
use crate::table::Table;

/// Measures the three overhead components the paper reports: recognition
/// (running the auxiliary alongside the target), similarity calculation and
/// classification.
pub fn overhead(ctx: &ExperimentContext) {
    println!("== §V-I: time overhead of detection on DS0+{{DS1}} ==");
    let ds0 = AsrProfile::Ds0.trained();
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
    let method = SimilarityMethod::default();

    // Train the classifier once so detection is exercised end to end.
    let benign = ctx.benign_scores(&[AsrProfile::Ds1], method);
    let aes = ctx.ae_scores(&[AsrProfile::Ds1], method, None);
    system.train_on_scores(&benign, &aes, ClassifierKind::Svm);

    let samples: Vec<&mvp_audio::Waveform> =
        ctx.benign.utterances().iter().map(|u| &u.wave).take(16).collect();

    // 1. Target-only recognition time.
    let t0 = Instant::now();
    for w in &samples {
        std::hint::black_box(ds0.transcribe(w));
    }
    let t_target = t0.elapsed().as_secs_f64() / samples.len() as f64;

    // 2. Parallel pair (target + auxiliary) recognition time.
    let t1 = Instant::now();
    let mut transcripts = Vec::new();
    for w in &samples {
        transcripts.push(system.transcripts(w));
    }
    let t_pair = t1.elapsed().as_secs_f64() / samples.len() as f64;

    // 3. Similarity calculation.
    let t2 = Instant::now();
    for (target, aux) in &transcripts {
        std::hint::black_box(system.scores_from_transcripts(target, aux));
    }
    let t_sim = t2.elapsed().as_secs_f64() / samples.len() as f64;

    // 4. Classification.
    let vectors: Vec<Vec<f64>> =
        transcripts.iter().map(|(t, a)| system.scores_from_transcripts(t, a)).collect();
    let t3 = Instant::now();
    for v in &vectors {
        std::hint::black_box(system.classify_scores(v));
    }
    let t_cls = t3.elapsed().as_secs_f64() / vectors.len() as f64;

    let mut t = Table::new(["Component", "Mean time per audio", "Relative to recognition"]);
    let rel = |x: f64| format!("{:.3}%", x / t_target * 100.0);
    t.row(["DS0 recognition".to_string(), format!("{:.4} s", t_target), "100%".to_string()]);
    t.row([
        "added by parallel DS1".to_string(),
        format!("{:.4} s", (t_pair - t_target).max(0.0)),
        rel((t_pair - t_target).max(0.0)),
    ]);
    t.row(["similarity calculation".to_string(), format!("{:.2e} s", t_sim), rel(t_sim)]);
    t.row(["classification".to_string(), format!("{:.2e} s", t_cls), rel(t_cls)]);
    println!("{t}");
    println!(
        "(paper, on an 18-core machine: 0.065 s / 0.74% recognition overhead, 5.0e-6 s\n\
         similarity, 4.2e-7 s classification. This reproduction runs on one core, so the\n\
         auxiliary cannot be hidden behind true parallelism; similarity and classification\n\
         remain negligible, matching the paper's conclusion.)\n"
    );
}
