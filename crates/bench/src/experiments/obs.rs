//! Observability-plane overhead benchmark: serve throughput with the obs
//! plane fully off, with span tracing enabled, and with the verdict audit
//! log enabled — plus an informational comparison against the plain serve
//! benchmark's `BENCH_serve.json`, when one is present.
//!
//! Offline and seeded like the serve benchmark: same corpus, same trained
//! system, one fresh engine per mode. Results print as a table and are
//! written to `BENCH_obs.json` in the working directory.

use std::sync::Arc;

use mvp_asr::AsrProfile;
use mvp_audio::Waveform;
use mvp_ears::{DetectionSystem, SimilarityMethod};
use mvp_ml::ClassifierKind;
use mvp_obs::{AuditLog, JsonObj};
use mvp_serve::{
    run_load, DegradePolicy, DetectionEngine, EngineConfig, LoadMode, LoadReport, LoadSpec,
};

use crate::context::ExperimentContext;
use crate::experiments::THREE_AUX;
use crate::table::Table;

/// Output artifact path, relative to the working directory.
pub const ARTIFACT: &str = "BENCH_obs.json";

/// What the observability plane does during one measured run.
enum ObsMode {
    /// Tracing disabled, no audit log: the zero-cost baseline.
    Off,
    /// Span tracing enabled with the given ring capacity.
    Traced { capacity: usize },
    /// Verdict audit log enabled with the given rotation budget.
    Audited { max_bytes: u64 },
}

impl ObsMode {
    fn name(&self) -> &'static str {
        match self {
            ObsMode::Off => "obs-off",
            ObsMode::Traced { .. } => "traced",
            ObsMode::Audited { .. } => "audited",
        }
    }
}

/// One measured mode: the load report plus what the plane captured.
struct ModeOutcome {
    name: &'static str,
    report: LoadReport,
    /// Spans drained from the ring after the run (traced mode only).
    spans: u64,
    /// Audit records written during the run (audited mode only).
    audit_lines: u64,
}

/// Runs the three obs modes against identical load and writes [`ARTIFACT`].
pub fn run_obs_bench(ctx: &ExperimentContext) {
    println!("== observability plane: tracing/audit overhead under serve load ==");
    let method = SimilarityMethod::default();
    let aux: Vec<AsrProfile> = THREE_AUX.to_vec();

    // Warm-start every ASR from the context's artifact cache; cold
    // retraining here would dwarf the obs overhead being measured.
    let models = ctx.models_dir();
    let mut system = DetectionSystem::builder_for(AsrProfile::Ds0.trained_in(Some(&models)))
        .auxiliary_asr(aux[0].trained_in(Some(&models)))
        .auxiliary_asr(aux[1].trained_in(Some(&models)))
        .auxiliary_asr(aux[2].trained_in(Some(&models)))
        .build();
    let benign_scores = ctx.benign_scores(&aux, method);
    let ae_scores = ctx.ae_scores(&aux, method, None);
    system.train_on_scores(&benign_scores, &ae_scores, ClassifierKind::Svm);
    let system = Arc::new(system);
    let n_aux = system.n_auxiliaries();

    let corpus: Vec<Arc<Waveform>> =
        ctx.benign.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();
    let requests = (corpus.len() * 3).clamp(24, 240);

    let base_config = EngineConfig {
        queue_cap: 64,
        max_batch: 8,
        max_delay_ms: 2,
        deadline_ms: 120_000,
        aux_deadline_ms: Vec::new(),
        cache_cap: 256,
        ..EngineConfig::default()
    };

    // Warm-up pass (untimed, discarded): brings code and allocator into
    // steady state so the first measured mode is not penalised.
    run_mode(
        &system,
        n_aux,
        &benign_scores,
        &ae_scores,
        &corpus,
        requests.min(24),
        &base_config,
        &ObsMode::Off,
        90,
    );

    let modes = [
        ObsMode::Off,
        ObsMode::Traced { capacity: 1 << 16 },
        ObsMode::Audited { max_bytes: 1 << 22 },
    ];
    let outcomes: Vec<ModeOutcome> = modes
        .iter()
        .enumerate()
        .map(|(i, mode)| {
            run_mode(
                &system,
                n_aux,
                &benign_scores,
                &ae_scores,
                &corpus,
                requests,
                &base_config,
                mode,
                91 + i as u64,
            )
        })
        .collect();

    let off_rps = outcomes[0].report.throughput_rps;
    let overhead_pct = |rps: f64| {
        if off_rps > 0.0 {
            (off_rps - rps) / off_rps * 100.0
        } else {
            0.0
        }
    };

    let mut table =
        Table::new(["mode", "done", "rps", "overhead", "p95 ms", "spans", "audit lines"]);
    for o in &outcomes {
        table.row([
            o.name.to_string(),
            o.report.tally.total().to_string(),
            format!("{:.1}", o.report.throughput_rps),
            format!("{:+.1}%", overhead_pct(o.report.throughput_rps)),
            format!("{:.1}", o.report.stats.latency_p95_micros as f64 / 1e3),
            o.spans.to_string(),
            o.audit_lines.to_string(),
        ]);
    }
    println!("{table}");

    // Informational: how this run's baseline compares with the plain serve
    // benchmark's artifact, when one has been written. Cross-run hardware
    // noise makes this a report, not a gate — the in-process gate lives in
    // the obs_smoke binary.
    let serve_baseline = serve_baseline_rps();
    match serve_baseline {
        Some(rps) => println!(
            "serve baseline (BENCH_serve.json closed-loop best): {rps:.1} rps; obs-off here: {off_rps:.1} rps"
        ),
        None => println!("no {} baseline found (run the serve bench first)", super::serve::ARTIFACT),
    }

    let modes_json: Vec<String> = outcomes
        .iter()
        .map(|o| {
            JsonObj::new()
                .str("name", o.name)
                .f64("throughput_rps", o.report.throughput_rps)
                .f64("overhead_pct", overhead_pct(o.report.throughput_rps))
                .u64("completed", o.report.tally.total())
                .u64("latency_p95_micros", o.report.stats.latency_p95_micros)
                .u64("spans", o.spans)
                .u64("audit_lines", o.audit_lines)
                .finish()
        })
        .collect();
    let mut root = JsonObj::new()
        .u64("requests_per_mode", requests as u64)
        .raw("modes", &format!("[{}]", modes_json.join(",")));
    root = match serve_baseline {
        Some(rps) => root.f64("serve_baseline_rps", rps),
        None => root.null("serve_baseline_rps"),
    };
    let json = format!("{}\n", root.finish());
    match std::fs::write(ARTIFACT, &json) {
        Ok(()) => println!("wrote {ARTIFACT}\n"),
        Err(e) => println!("could not write {ARTIFACT}: {e}\n"),
    }
}

/// Starts a fresh engine under one obs mode, drives the standard closed
/// load through it, and tears the mode back down.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    system: &Arc<DetectionSystem>,
    n_aux: usize,
    benign_scores: &[Vec<f64>],
    ae_scores: &[Vec<f64>],
    corpus: &[Arc<Waveform>],
    requests: usize,
    base_config: &EngineConfig,
    mode: &ObsMode,
    seed: u64,
) -> ModeOutcome {
    let mut config = base_config.clone();
    let audit_path =
        std::env::temp_dir().join(format!("mvp-obs-bench-{}-{seed}.jsonl", std::process::id()));
    match mode {
        ObsMode::Off => mvp_obs::trace::disable(),
        ObsMode::Traced { capacity } => mvp_obs::trace::enable(*capacity),
        ObsMode::Audited { max_bytes } => {
            let log = AuditLog::create(&audit_path, *max_bytes).expect("audit log in temp dir");
            config.audit = Some(Arc::new(log));
        }
    }

    let policy = DegradePolicy::trained(n_aux, benign_scores, ae_scores, ClassifierKind::Knn, 0.05);
    let engine = DetectionEngine::start(Arc::clone(system), policy, config.clone());
    let spec = LoadSpec {
        name: mode.name().into(),
        requests,
        mode: LoadMode::Closed { concurrency: 4 },
        duplicate_frac: 0.5,
        seed,
    };
    let report = run_load(&engine, corpus, &spec);
    engine.shutdown();

    let (spans, audit_lines) = match mode {
        ObsMode::Off => (0, 0),
        ObsMode::Traced { .. } => {
            let events = mvp_obs::trace::drain();
            mvp_obs::trace::disable();
            (events.len() as u64, 0)
        }
        ObsMode::Audited { .. } => {
            let lines = config.audit.as_ref().map_or(0, |log| log.lines_written());
            let _ = std::fs::remove_file(&audit_path);
            (0, lines)
        }
    };
    ModeOutcome { name: mode.name(), report, spans, audit_lines }
}

/// Best closed-loop throughput recorded in `BENCH_serve.json`, if the
/// artifact exists and parses.
fn serve_baseline_rps() -> Option<f64> {
    let text = std::fs::read_to_string(super::serve::ARTIFACT).ok()?;
    let value = mvp_obs::json::parse(&text).ok()?;
    let levels = value.as_arr()?;
    levels
        .iter()
        .filter(|level| {
            level.get("name").and_then(|n| n.as_str()).is_some_and(|n| n.starts_with("closed"))
        })
        .filter_map(|level| level.get("throughput_rps").and_then(|r| r.as_f64()))
        .fold(None, |best: Option<f64>, rps| Some(best.map_or(rps, |b| b.max(rps))))
}
