//! Tables IV–VI: classifier comparison with k-fold cross-validation, and
//! the effect of the auxiliary count on FPR/FNR.

use mvp_asr::AsrProfile;
use mvp_ears::SimilarityMethod;
use mvp_ml::{cross_validate, ClassifierKind, CrossValSummary, Dataset};

use crate::context::{score_mat, ExperimentContext};
use crate::table::Table;

use super::{MULTI_AUX, SINGLE_AUX};

fn cv(ctx: &ExperimentContext, aux: &[AsrProfile], kind: ClassifierKind) -> CrossValSummary {
    let method = SimilarityMethod::default();
    let data = Dataset::from_classes(
        score_mat(ctx.benign_scores(aux, method)),
        score_mat(ctx.ae_scores(aux, method, None)),
    );
    cross_validate(kind, &data, ctx.scale.folds, 99)
}

fn pct_pair((mean, std): (f64, f64)) -> String {
    format!("{:.2}% / {:.2}%", mean * 100.0, std * 100.0)
}

fn cv_table(ctx: &ExperimentContext, systems: &[&[AsrProfile]], title: &str) {
    println!("{title}");
    let mut header = vec!["Classifier".to_string(), "Performance".to_string()];
    header.extend(systems.iter().map(|aux| ExperimentContext::system_name(aux)));
    let mut t = Table::new(header);
    for kind in ClassifierKind::ALL {
        let summaries: Vec<CrossValSummary> =
            systems.iter().map(|aux| cv(ctx, aux, kind)).collect();
        for (metric, get) in [
            ("Accuracy", CrossValSummary::accuracy as fn(&CrossValSummary) -> (f64, f64)),
            ("FPR", CrossValSummary::fpr),
            ("FNR", CrossValSummary::fnr),
        ] {
            let mut row = vec![kind.name().to_string(), metric.to_string()];
            row.extend(summaries.iter().map(|s| pct_pair(get(s))));
            t.row(row);
        }
    }
    println!("{t}");
}

/// Table IV: single-auxiliary systems (plus the weak-Kaldi ablation the
/// paper mentions in prose: "<80% with Kaldi").
pub fn table4(ctx: &ExperimentContext) {
    let singles: Vec<&[AsrProfile]> = SINGLE_AUX.iter().map(|a| a.as_slice()).collect();
    cv_table(
        ctx,
        &singles,
        &format!(
            "== Table IV: single-auxiliary-model systems ({}-fold cross-validation, mean/STD) ==",
            ctx.scale.folds
        ),
    );
    // Weak-auxiliary ablation.
    let kaldi: &[AsrProfile] = &[AsrProfile::Kaldi];
    let s = cv(ctx, kaldi, ClassifierKind::Svm);
    println!(
        "ablation DS0+{{KALDI}} (inaccurate auxiliary, SVM): accuracy {} — the paper\n\
         reports <80% for Kaldi; a weak auxiliary degrades detection.\n",
        pct_pair(s.accuracy())
    );
}

/// Table V: multi-auxiliary systems.
pub fn table5(ctx: &ExperimentContext) {
    cv_table(
        ctx,
        &MULTI_AUX,
        &format!(
            "== Table V: multi-auxiliary-model systems ({}-fold cross-validation, mean/STD) ==",
            ctx.scale.folds
        ),
    );
}

/// Table VI: FPR/FNR vs the number of auxiliary ASRs (SVM).
pub fn table6(ctx: &ExperimentContext) {
    println!("== Table VI: impact of the number of ASRs on FPR and FNR (SVM) ==");
    let mut t = Table::new(["# of Aux. ASRs", "System", "FPR", "FNR"]);
    let singles: Vec<&[AsrProfile]> = SINGLE_AUX.iter().map(|a| a.as_slice()).collect();
    for aux in singles.iter().chain(MULTI_AUX.iter()) {
        let s = cv(ctx, aux, ClassifierKind::Svm);
        t.row([
            aux.len().to_string(),
            ExperimentContext::system_name(aux),
            format!("{:.2}%", s.fpr().0 * 100.0),
            format!("{:.2}%", s.fnr().0 * 100.0),
        ]);
    }
    println!("{t}");
}
