//! Table VII + Figure 5 (benign-only threshold detection and ROC curves),
//! Table VIII (cross-attack generalisation) and the §V-J non-targeted
//! study.

use mvp_asr::{Asr, AsrProfile};
use mvp_attack::AeKind;
use mvp_audio::noise::{mix_at_snr, NoiseKind};
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears::{SimilarityMethod, ThresholdDetector};
use mvp_ml::{auc, roc_curve, ClassifierKind, Dataset};
use mvp_textsim::wer;

use crate::context::{score_mat, ExperimentContext};
use crate::table::Table;

use super::{MULTI_AUX, SINGLE_AUX};

/// Table VII: unseen-attack detection via a benign-only threshold, FPR
/// budget 5 % (single-auxiliary systems).
pub fn table7(ctx: &ExperimentContext) {
    println!("== Table VII: unseen-attack AEs, benign-only threshold detectors ==");
    let method = SimilarityMethod::default();
    let mut t = Table::new(["System", "Threshold", "FPR", "FNs", "FNR", "Defense rate"]);
    for aux in SINGLE_AUX {
        let benign: Vec<f64> = ctx.benign_scores(&aux, method).into_iter().map(|v| v[0]).collect();
        let aes: Vec<f64> = ctx.ae_scores(&aux, method, None).into_iter().map(|v| v[0]).collect();
        let det = ThresholdDetector::fit_benign(&benign, 0.05);
        let fns = aes.iter().filter(|&&s| !det.is_adversarial(s)).count();
        t.row([
            ExperimentContext::system_name(&aux),
            format!("{:.2}", det.threshold()),
            format!("{:.2}%", det.training_fpr() * 100.0),
            fns.to_string(),
            format!("{:.2}%", fns as f64 / aes.len().max(1) as f64 * 100.0),
            format!("{:.2}%", det.defense_rate(&aes) * 100.0),
        ]);
    }
    println!("{t}");
}

/// Figure 5: ROC curves (sampled operating points) and AUC per
/// single-auxiliary system.
pub fn fig5(ctx: &ExperimentContext) {
    println!("== Figure 5: ROC curves of the single-auxiliary systems ==");
    let method = SimilarityMethod::default();
    for aux in SINGLE_AUX {
        let benign: Vec<f64> = ctx.benign_scores(&aux, method).into_iter().map(|v| v[0]).collect();
        let aes: Vec<f64> = ctx.ae_scores(&aux, method, None).into_iter().map(|v| v[0]).collect();
        let scores: Vec<f64> = benign.iter().chain(&aes).copied().collect();
        let labels: Vec<usize> =
            std::iter::repeat_n(0, benign.len()).chain(std::iter::repeat_n(1, aes.len())).collect();
        let curve = roc_curve(&scores, &labels);
        let a = auc(&curve);
        println!("-- {} (AUC {:.4}) --", ExperimentContext::system_name(&aux), a);
        let mut t = Table::new(["FPR", "TPR"]);
        // Sample ~12 evenly spaced points along the curve.
        let step = (curve.len() / 12).max(1);
        for p in curve.iter().step_by(step) {
            t.row([format!("{:.3}", p.fpr), format!("{:.3}", p.tpr)]);
        }
        if let Some(last) = curve.last() {
            t.row([format!("{:.3}", last.fpr), format!("{:.3}", last.tpr)]);
        }
        println!("{t}");
    }
}

/// Table VIII: train on one attack family, test on the other
/// (multi-auxiliary systems, SVM).
pub fn table8(ctx: &ExperimentContext) {
    println!("== Table VIII: defense rates against unseen-attack AEs (multi-aux) ==");
    let method = SimilarityMethod::default();
    let mut t = Table::new([
        "System",
        "Black-box AEs (trained on white-box)",
        "White-box AEs (trained on black-box)",
    ]);
    for aux in MULTI_AUX {
        let benign = ctx.benign_scores(aux, method);
        let wb = ctx.ae_scores(aux, method, Some(AeKind::WhiteBox));
        let bb = ctx.ae_scores(aux, method, Some(AeKind::BlackBox));
        let defense = |train_ae: &Vec<Vec<f64>>, test_ae: &Vec<Vec<f64>>| -> String {
            if train_ae.is_empty() || test_ae.is_empty() {
                return "—".to_string();
            }
            let data =
                Dataset::from_classes(score_mat(benign.clone()), score_mat(train_ae.clone()));
            let mut model = ClassifierKind::Svm.build();
            model.fit(&data);
            let detected = test_ae.iter().filter(|v| model.predict(v) == 1).count();
            format!("{:.2}%", detected as f64 / test_ae.len() as f64 * 100.0)
        };
        t.row([ExperimentContext::system_name(aux), defense(&wb, &bb), defense(&bb, &wb)]);
    }
    println!("{t}");
}

/// §V-J: non-targeted AEs from −6 dB noise, detected by the benign-only
/// threshold (FPR budget 5 %).
pub fn nontargeted(ctx: &ExperimentContext) {
    println!("== §V-J: detecting non-targeted AEs (noise at -6 dB SNR) ==");
    let method = SimilarityMethod::default();
    // CommonVoice substitute: clean, distinct seed from every other corpus.
    let cv = CorpusBuilder::new(CorpusConfig {
        size: ctx.scale.commonvoice,
        seed: 20_26,
        noise_prob: 0.0,
        ..CorpusConfig::default()
    })
    .build();
    let profiles = [AsrProfile::Ds0, AsrProfile::Ds1, AsrProfile::Gcs, AsrProfile::At];
    let asrs: Vec<_> = profiles.iter().map(|p| p.trained()).collect();

    // Build the noisy samples and verify they are non-targeted AEs (WER
    // beyond the paper's 80% bar on the target model).
    let mut noisy = Vec::new();
    let mut high_wer = 0usize;
    for (i, u) in cv.utterances().iter().enumerate() {
        let noise = NoiseKind::White.generate(u.wave.len(), u.wave.sample_rate(), i as u64);
        let n = mix_at_snr(&u.wave, &noise, -6.0);
        let w = wer(&u.text, &asrs[0].transcribe(&n));
        if w > 0.8 {
            high_wer += 1;
        }
        noisy.push(n);
    }
    println!(
        "{high_wer}/{} noisy samples exceed 80% WER on DS0 (the paper's construction bar)",
        noisy.len()
    );

    let mut t = Table::new(["System", "Threshold", "Defense rate"]);
    for (ai, aux) in SINGLE_AUX.iter().enumerate() {
        let benign: Vec<f64> = ctx.benign_scores(aux, method).into_iter().map(|v| v[0]).collect();
        let det = ThresholdDetector::fit_benign(&benign, 0.05);
        let aux_asr = &asrs[ai + 1];
        let scores: Vec<f64> = noisy
            .iter()
            .map(|w| method.score(&asrs[0].transcribe(w), &aux_asr.transcribe(w)))
            .collect();
        t.row([
            ExperimentContext::system_name(aux),
            format!("{:.2}", det.threshold()),
            format!("{:.2}%", det.defense_rate(&scores) * 100.0),
        ]);
    }
    println!("{t}");
    println!("(paper: defense rate > 90% for every auxiliary)\n");
}
