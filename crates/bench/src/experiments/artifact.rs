//! Artifact-plane benchmark: cold training vs warm loading of every ASR
//! profile through the versioned checkpoint format. Results print as a
//! table and are written to `BENCH_artifact.json` in the working
//! directory.

use std::time::Instant;

use mvp_asr::Asr;

use crate::context::{ExperimentContext, PROFILES};
use crate::table::Table;

/// Output artifact path, relative to the working directory.
pub const ARTIFACT: &str = "BENCH_artifact.json";

/// Benchmarks the disk tier for every profile: time a cold train (into a
/// scratch directory) against a warm load from the context's model
/// directory, assert the two pipelines transcribe identically, then write
/// [`ARTIFACT`].
pub fn run_artifact_bench(ctx: &ExperimentContext) {
    println!("== artifact plane: cold train vs warm load ==");
    let models = ctx.models_dir();
    let scratch = std::env::temp_dir().join(format!("mvp-artifact-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let probe = &ctx.benign.utterances()[0].wave;

    let mut table =
        Table::new(["profile", "artifact KiB", "cold train ms", "warm load ms", "speedup"]);
    let mut entries = Vec::new();
    for profile in PROFILES {
        // The context already routed this profile through the disk tier,
        // so an artifact exists; load_or_train covers a cold cache anyway.
        if let Err(e) = profile.load_or_train(&models) {
            println!("{profile}: model dir unusable ({e}); skipping");
            continue;
        }
        let t0 = Instant::now();
        let warm_asr = match profile.load(&models) {
            Ok(asr) => asr,
            Err(e) => {
                println!("{profile}: warm load failed ({e}); skipping");
                continue;
            }
        };
        let warm_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let cold_asr = match profile.load_or_train(&scratch) {
            Ok(asr) => asr,
            Err(e) => {
                println!("{profile}: cold train failed ({e}); skipping");
                continue;
            }
        };
        let cold_ms = t1.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            warm_asr.transcribe(probe),
            cold_asr.transcribe(probe),
            "{profile}: warm-loaded pipeline diverged from a fresh train"
        );

        let bytes = std::fs::metadata(profile.artifact_path(&models)).map_or(0, |m| m.len());
        let speedup = cold_ms / warm_ms.max(1e-6);
        table.row([
            profile.name().to_string(),
            format!("{:.1}", bytes as f64 / 1024.0),
            format!("{cold_ms:.1}"),
            format!("{warm_ms:.2}"),
            format!("{speedup:.0}x"),
        ]);
        entries.push(format!(
            "    {{\"profile\": \"{}\", \"artifact_bytes\": {bytes}, \
             \"cold_train_ms\": {cold_ms:.3}, \"warm_load_ms\": {warm_ms:.3}, \
             \"speedup\": {speedup:.1}}}",
            profile.name()
        ));
    }
    let _ = std::fs::remove_dir_all(&scratch);
    println!("{table}");

    let json = format!("{{\n  \"profiles\": [\n{}\n  ]\n}}\n", entries.join(",\n"));
    match std::fs::write(ARTIFACT, &json) {
        Ok(()) => println!("wrote {ARTIFACT}\n"),
        Err(e) => println!("could not write {ARTIFACT}: {e}\n"),
    }
}
