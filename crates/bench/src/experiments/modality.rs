//! Multi-modal detection benchmark: per-modality AUC and extraction
//! latency against the similarity-only baseline, plus the fused
//! similarity + modality classifier.
//!
//! Every cached audio (benign and AE) is reduced to its modality
//! evidence with the same `DetectionSystem` registry the serve path
//! uses; AUCs come from a logistic scorer fitted per feature family so
//! multi-dimensional blocks reduce to one calibrated scalar in the
//! workspace's score orientation (higher = more benign). Results print
//! as a table and are written to `BENCH_modality.json`.

use mvp_asr::AsrProfile;
use mvp_ears::{DetectionSystem, SimilarityMethod};
use mvp_ml::{auc, roc_curve, Classifier, ClassifierKind, Dataset, LogisticRegression, Mat};
use mvp_modality::ModalityKind;
use mvp_obs::JsonObj;

use crate::context::{score_mat, ExperimentContext};
use crate::experiments::THREE_AUX;
use crate::table::Table;

/// Output artifact path, relative to the working directory.
pub const ARTIFACT: &str = "BENCH_modality.json";

/// One audio's complete evidence: similarity scores plus every modality
/// block, with per-family extraction wall time.
struct Evidence {
    /// 0 = benign, 1 = adversarial.
    label: usize,
    /// Per-auxiliary similarity scores (cached transcripts).
    sims: Vec<f64>,
    /// One feature block per modality, in registry order.
    blocks: Vec<Vec<f64>>,
    /// Wall time spent scoring each modality block.
    block_us: Vec<u64>,
}

/// Fits a logistic scorer on one feature family and returns its AUC in
/// the workspace orientation (low scalar = flagged adversarial). The
/// scorer reduces multi-dimensional blocks to one calibrated scalar so
/// families of different widths compare on the same footing. Features
/// are standardised per dimension first: gradient descent with one
/// shared learning rate stalls on blocks whose scales differ by orders
/// of magnitude, which would penalise exactly the wide fused rows this
/// benchmark exists to compare.
fn family_auc(rows: &[(usize, Vec<f64>)]) -> f64 {
    let dim = rows.first().map_or(0, |(_, r)| r.len());
    let n = rows.len().max(1) as f64;
    let mean: Vec<f64> =
        (0..dim).map(|j| rows.iter().map(|(_, r)| r[j]).sum::<f64>() / n).collect();
    let std: Vec<f64> = (0..dim)
        .map(|j| {
            let var = rows.iter().map(|(_, r)| (r[j] - mean[j]).powi(2)).sum::<f64>() / n;
            var.sqrt().max(1e-9)
        })
        .collect();
    let zscore = |r: &[f64]| -> Vec<f64> {
        r.iter().enumerate().map(|(j, v)| (v - mean[j]) / std[j]).collect()
    };

    let class = |label: usize| -> Mat {
        score_mat(rows.iter().filter(|(l, _)| *l == label).map(|(_, r)| zscore(r)).collect())
    };
    let data = Dataset::from_classes(class(0), class(1));
    let mut lr = LogisticRegression::new();
    lr.fit(&data);
    // `probability` is P(adversarial); flip it so higher = more benign,
    // matching `roc_curve`'s low-score-is-positive sweep.
    let scores: Vec<f64> = rows.iter().map(|(_, r)| 1.0 - lr.probability(&zscore(r))).collect();
    let labels: Vec<usize> = rows.iter().map(|(l, _)| *l).collect();
    auc(&roc_curve(&scores, &labels))
}

/// Collects per-audio evidence, computes every AUC, trains the fused
/// classifier, prints the table and writes [`ARTIFACT`]. Returns the
/// (fused, similarity-only) AUC pair so smoke gates can assert on it.
pub fn run_modality_bench(ctx: &ExperimentContext) -> (f64, f64) {
    println!("== detection modalities: AUC and latency vs similarity-only ==");
    let method = SimilarityMethod::default();
    let aux: Vec<AsrProfile> = THREE_AUX.to_vec();
    let kinds = ModalityKind::ALL;

    // Warm-start every ASR from the context's artifact cache instead of
    // retraining; the run measures modality scoring, not ASR training.
    let models = ctx.models_dir();
    let mut system = DetectionSystem::builder_for(AsrProfile::Ds0.trained_in(Some(&models)))
        .auxiliary_asr(aux[0].trained_in(Some(&models)))
        .auxiliary_asr(aux[1].trained_in(Some(&models)))
        .auxiliary_asr(aux[2].trained_in(Some(&models)))
        .modality_kinds(&kinds)
        .build();
    system.train_on_scores(
        &ctx.benign_scores(&aux, method),
        &ctx.ae_scores(&aux, method, None),
        ClassifierKind::Svm,
    );

    // Reduce every cached audio to its evidence. Similarity scores come
    // from the transcript cache; modality blocks are computed fresh (and
    // timed) on the waveform, exactly as the serve path would.
    let samples: Vec<(String, &mvp_audio::Waveform, usize)> = ctx
        .benign
        .utterances()
        .iter()
        .map(|u| (format!("b{}", u.id), &u.wave, 0))
        .chain(ctx.aes.iter().map(|(id, ae)| (id.clone(), &ae.wave, 1)))
        .collect();
    let evidence: Vec<Evidence> = samples
        .iter()
        .map(|(id, wave, label)| {
            let target = ctx.transcript(id, AsrProfile::Ds0);
            let outcomes = system.score_modalities(wave, target);
            Evidence {
                label: *label,
                sims: ctx.score_vector(id, &aux, method),
                blocks: outcomes.iter().map(|o| o.features.clone()).collect(),
                block_us: outcomes.iter().map(|o| o.elapsed_us).collect(),
            }
        })
        .collect();
    let n_benign = evidence.iter().filter(|e| e.label == 0).count();
    let n_ae = evidence.len() - n_benign;

    // The fused classifier the detection system actually serves, trained
    // on the raw rows (similarity ++ blocks); its augmented rows carry
    // the one-class instability feature as well.
    let raw_rows: Vec<(usize, Vec<f64>)> = evidence
        .iter()
        .map(|e| {
            let mut row = e.sims.clone();
            for block in &e.blocks {
                row.extend_from_slice(block);
            }
            (e.label, row)
        })
        .collect();
    let class_mat = |label: usize| -> Mat {
        score_mat(raw_rows.iter().filter(|(l, _)| *l == label).map(|(_, r)| r.clone()).collect())
    };
    system.train_fused_on_mats(class_mat(0), class_mat(1), ClassifierKind::Svm);
    let fused = system.fused_classifier().expect("just trained");
    let fused_rows: Vec<(usize, Vec<f64>)> =
        raw_rows.iter().map(|(l, r)| (*l, fused.augment(r))).collect();

    let sim_rows: Vec<(usize, Vec<f64>)> =
        evidence.iter().map(|e| (e.label, e.sims.clone())).collect();
    let similarity_auc = family_auc(&sim_rows);
    let fused_auc = family_auc(&fused_rows);

    let mut table = Table::new(["family", "dim", "auc", "mean extract us"]);
    table.row([
        "similarity (baseline)".into(),
        aux.len().to_string(),
        format!("{similarity_auc:.4}"),
        "cached".into(),
    ]);
    let mut modality_json = Vec::new();
    for (i, kind) in kinds.iter().enumerate() {
        let rows: Vec<(usize, Vec<f64>)> =
            evidence.iter().map(|e| (e.label, e.blocks[i].clone())).collect();
        let modality_auc = family_auc(&rows);
        let mean_us = evidence.iter().map(|e| e.block_us[i] as f64).sum::<f64>()
            / evidence.len().max(1) as f64;
        table.row([
            kind.name().into(),
            kind.feature_dim().to_string(),
            format!("{modality_auc:.4}"),
            format!("{mean_us:.0}"),
        ]);
        modality_json.push(
            JsonObj::new()
                .str("name", kind.name())
                .u64("dim", kind.feature_dim() as u64)
                .f64("auc", modality_auc)
                .f64("mean_extract_us", mean_us)
                .finish(),
        );
    }
    table.row([
        "fused (sim + modalities)".into(),
        fused.layout().fused_dim().to_string(),
        format!("{fused_auc:.4}"),
        "-".into(),
    ]);
    println!("{table}");
    println!(
        "fused AUC {fused_auc:.4} vs similarity-only {similarity_auc:.4} \
         ({n_benign} benign / {n_ae} AE)"
    );

    let json = format!(
        "{}\n",
        JsonObj::new()
            .str("scale", ctx.scale.name)
            .u64("n_benign", n_benign as u64)
            .u64("n_ae", n_ae as u64)
            .f64("similarity_auc", similarity_auc)
            .f64("fused_auc", fused_auc)
            .u64("fused_dim", fused.layout().fused_dim() as u64)
            .raw("modalities", &format!("[{}]", modality_json.join(",")))
            .finish()
    );
    match std::fs::write(ARTIFACT, &json) {
        Ok(()) => println!("wrote {ARTIFACT}\n"),
        Err(e) => println!("could not write {ARTIFACT}: {e}\n"),
    }
    (fused_auc, similarity_auc)
}
