//! Table I (example AE transcriptions), Table II (dataset inventory) and
//! Figure 4 (similarity-score histograms).

use mvp_asr::AsrProfile;
use mvp_attack::AeKind;
use mvp_ears::SimilarityMethod;

use crate::context::ExperimentContext;
use crate::table::Table;

use super::SINGLE_AUX;

/// Table I: one white-box AE transcribed by all four ASRs.
pub fn table1(ctx: &ExperimentContext) {
    println!("== Table I: recognition results of one AE by multiple ASRs ==");
    let Some((id, ae)) = ctx.aes.iter().find(|(_, ae)| ae.kind == AeKind::WhiteBox) else {
        println!("(no white-box AEs at this scale)");
        return;
    };
    println!("host transcription: {:?}  embedded command: {:?}", ae.host_text, ae.command);
    let mut t = Table::new(["ASR", "Transcribed Text"]);
    for profile in [AsrProfile::Ds0, AsrProfile::Ds1, AsrProfile::Gcs, AsrProfile::At] {
        t.row([profile.name(), ctx.transcript(id, profile)]);
    }
    println!("{t}");
}

/// Table II: dataset sizes plus measured perturbation similarity per kind.
pub fn table2(ctx: &ExperimentContext) {
    println!("== Table II: datasets used in the evaluation ==");
    let mut t = Table::new(["Dataset", "# of Samples", "Mean AE/host similarity"]);
    t.row(["Benign".to_string(), ctx.benign.len().to_string(), "—".to_string()]);
    for kind in [AeKind::WhiteBox, AeKind::BlackBox] {
        let subset: Vec<&_> = ctx.aes.iter().filter(|(_, ae)| ae.kind == kind).collect();
        let mean_sim = if subset.is_empty() {
            f64::NAN
        } else {
            subset.iter().map(|(_, ae)| ae.similarity).sum::<f64>() / subset.len() as f64
        };
        t.row([
            format!("{kind} AEs"),
            subset.len().to_string(),
            format!("{:.1}%", mean_sim * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "(paper: 2400 benign, 1800 white-box, 600 black-box; similarity 99.9% vs 94.6% —\n\
         our simulated attacks need louder perturbations, but the white-box > black-box\n\
         similarity ordering is preserved)\n"
    );
}

/// Figure 4: similarity-score histograms of the three single-auxiliary
/// systems (printed as bin counts).
pub fn fig4(ctx: &ExperimentContext) {
    println!("== Figure 4: similarity-score histograms (PE_JaroWinkler) ==");
    let method = SimilarityMethod::default();
    const BINS: usize = 10;
    for aux in SINGLE_AUX {
        let name = ExperimentContext::system_name(&aux);
        let benign: Vec<f64> = ctx.benign_scores(&aux, method).into_iter().map(|v| v[0]).collect();
        let aes: Vec<f64> = ctx.ae_scores(&aux, method, None).into_iter().map(|v| v[0]).collect();
        let hist = |scores: &[f64]| -> Vec<usize> {
            let mut bins = vec![0usize; BINS];
            for &s in scores {
                let b = ((s * BINS as f64) as usize).min(BINS - 1);
                bins[b] += 1;
            }
            bins
        };
        let hb = hist(&benign);
        let ha = hist(&aes);
        let mut t = Table::new(["score bin", "benign", "AE"]);
        for b in 0..BINS {
            t.row([
                format!("[{:.1}, {:.1})", b as f64 / BINS as f64, (b + 1) as f64 / BINS as f64),
                hb[b].to_string(),
                ha[b].to_string(),
            ]);
        }
        println!("-- {name} --\n{t}");
        // The paper's observation: the two populations form almost disjoint
        // clusters. Quantify the overlap for the record.
        let overlap: usize = hb.iter().zip(&ha).map(|(&b, &a)| b.min(a)).sum();
        println!("cluster overlap: {overlap} of {} samples\n", benign.len() + aes.len());
    }
}
