//! Section III: transferability of audio AEs, including the Kaldi
//! frame-subsampling variant and the CommanderSong-style two-iteration
//! recursive generation.

use mvp_asr::{Asr, AsrProfile};
use mvp_attack::{recursive_attack, WhiteBoxConfig};
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_textsim::wer;

use crate::context::ExperimentContext;
use crate::table::Table;

/// Cross-ASR transfer matrix of the cached DS0 AEs, plus the recursive
/// two-iteration experiment.
pub fn transfer(ctx: &ExperimentContext) {
    println!("== §III: transferability of audio AEs ==");
    let probes = [
        AsrProfile::Ds1,
        AsrProfile::Gcs,
        AsrProfile::At,
        AsrProfile::Kaldi,
        AsrProfile::KaldiVariant,
    ];
    let asrs: Vec<_> = probes.iter().map(|p| p.trained()).collect();
    let sample: Vec<&(String, mvp_attack::GeneratedAe)> = ctx.aes.iter().take(20).collect();
    let mut t = Table::new(["Probe ASR", "AEs transferring", "Transfer rate"]);
    for (p, asr) in probes.iter().zip(&asrs) {
        let hits = sample
            .iter()
            .filter(|(_, ae)| wer(&ae.command, &asr.transcribe(&ae.wave)) == 0.0)
            .count();
        t.row([
            p.name().to_string(),
            format!("{hits}/{}", sample.len()),
            format!("{:.1}%", hits as f64 / sample.len().max(1) as f64 * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "(every sampled AE fools DS0 by construction; the paper finds essentially no\n\
         transfer to other ASRs, including a Kaldi variant differing only in\n\
         --frame-subsampling-factor)\n"
    );

    // Two-iteration recursive generation (CommanderSong style): DS0 then DS1.
    println!("-- two-iteration recursive AEs (attack DS0, re-attack result on DS1) --");
    let hosts = CorpusBuilder::new(CorpusConfig {
        size: 3,
        seed: 31_415,
        noise_prob: 0.0,
        ..CorpusConfig::default()
    })
    .build();
    let ds0 = AsrProfile::Ds0.trained();
    let ds1 = AsrProfile::Ds1.trained();
    let mut t =
        Table::new(["host", "iter-1 ok", "iter-2 ok", "final fools DS0", "final fools DS1"]);
    let mut both = 0usize;
    let mut total = 0usize;
    for u in hosts.utterances() {
        let out = recursive_attack(
            &ds0,
            &ds1,
            &u.wave,
            "open the front door",
            &WhiteBoxConfig::default(),
        );
        if out.second.success {
            total += 1;
            if out.final_fools_a && out.final_fools_b {
                both += 1;
            }
        }
        t.row([
            u.text.clone(),
            out.first.success.to_string(),
            out.second.success.to_string(),
            out.final_fools_a.to_string(),
            out.final_fools_b.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "{both}/{total} completed recursions produced an AE fooling both models\n\
         (the paper reports zero; see EXPERIMENTS.md for the discussion)\n"
    );
}
