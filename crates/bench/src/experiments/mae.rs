//! Tables IX–XII: hypothetical multiple-ASR-effective AEs and the
//! proactively trained comprehensive system (§V-H).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvp_ears::eval::ScorePools;
use mvp_ears::{synthesize_mae, MaeType, SimilarityMethod};
use mvp_ml::{BinaryMetrics, Classifier, ClassifierKind, Dataset, Mat};

use crate::context::{score_mat, ExperimentContext};
use crate::table::Table;

use super::THREE_AUX;

/// Everything the MAE experiments share: the three-auxiliary score pools
/// and the per-type synthesized feature-vector sets.
pub struct MaeSets {
    /// Benign score vectors (real audio).
    pub benign: Vec<Vec<f64>>,
    /// Original (real) AE score matrix, one row per AE.
    pub original: Mat,
    /// Synthesized score matrix per MAE type, in [`MaeType::ALL`] order.
    pub per_type: Vec<Mat>,
}

/// Builds the score pools and synthesizes every MAE type.
pub fn build_sets(ctx: &ExperimentContext) -> MaeSets {
    let method = SimilarityMethod::default();
    let benign = ctx.benign_scores(&THREE_AUX, method);
    let original = ctx.ae_scores(&THREE_AUX, method, None);
    let pools = ScorePools::from_score_vectors(&benign, &original);
    let per_type = MaeType::ALL
        .iter()
        .enumerate()
        .map(|(i, t)| {
            synthesize_mae(&pools, &t.fooled_mask(), ctx.scale.mae_per_type, 1000 + i as u64)
        })
        .collect();
    MaeSets { benign, original: score_mat(original), per_type }
}

/// Table IX: the six MAE types and their synthesized counts.
pub fn table9(ctx: &ExperimentContext) {
    println!("== Table IX: six types of hypothetical MAE AEs ==");
    let sets = build_sets(ctx);
    let mut t = Table::new(["Type", "MAE AE", "# of MAE AEs"]);
    for (i, ty) in MaeType::ALL.iter().enumerate() {
        t.row([
            format!("Type-{}", i + 1),
            ty.name().to_string(),
            sets.per_type[i].n_rows().to_string(),
        ]);
    }
    println!("{t}");
}

/// Resamples `source` vectors with replacement into a `count`-row matrix
/// (the paper pads its benign feature set the same way for the
/// comprehensive system).
fn resample(source: &[Vec<f64>], count: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Mat::zeros(0, source.first().map_or(0, Vec::len));
    for _ in 0..count {
        out.push_row(&source[rng.gen_range(0..source.len())]);
    }
    out
}

fn train_svm(benign: Mat, aes: &Mat) -> Box<dyn Classifier> {
    let data = Dataset::from_classes(benign, aes.clone());
    let mut model = ClassifierKind::Svm.build();
    model.fit(&data);
    model
}

fn defense_rate(model: &dyn Classifier, aes: &Mat) -> f64 {
    if aes.is_empty() {
        return 0.0;
    }
    aes.rows().filter(|v| model.predict(v) == 1).count() as f64 / aes.n_rows() as f64
}

/// Table X: accuracy of systems trained on each MAE type (80/20, SVM).
pub fn table10(ctx: &ExperimentContext) {
    println!("== Table X: testing results per MAE AE type (SVM, 80/20) ==");
    let sets = build_sets(ctx);
    let mut t = Table::new(["MAE AE type", "Accuracy", "FPR", "FNR"]);
    for (i, _) in MaeType::ALL.iter().enumerate() {
        let benign = resample(&sets.benign, sets.per_type[i].n_rows(), 50 + i as u64);
        let data = Dataset::from_classes(benign, sets.per_type[i].clone());
        let (train, test) = data.split(0.8, 9);
        let mut model = ClassifierKind::Svm.build();
        model.fit(&train);
        let m =
            BinaryMetrics::from_predictions(&model.predict_batch(test.features()), test.labels());
        t.row([
            format!("Type-{}", i + 1),
            format!("{:.2}%", m.accuracy() * 100.0),
            format!("{:.2}%", m.fpr() * 100.0),
            format!("{:.2}%", m.fnr() * 100.0),
        ]);
    }
    println!("{t}");
}

/// Table XI: defense-rate matrix — train on one AE type, test on another.
pub fn table11(ctx: &ExperimentContext) {
    println!("== Table XI: defense rates against unseen-attack MAE AEs ==");
    let sets = build_sets(ctx);
    // Row/column order: Original, Type-1..Type-6.
    let names: Vec<String> = std::iter::once("Original".to_string())
        .chain((1..=6).map(|i| format!("Type-{i}")))
        .collect();
    let train_sets: Vec<&Mat> =
        std::iter::once(&sets.original).chain(sets.per_type.iter()).collect();
    let mut header = vec!["train \\ test".to_string()];
    header.extend(names.iter().cloned());
    let mut t = Table::new(header);
    for (ri, train_aes) in train_sets.iter().enumerate() {
        let benign = resample(&sets.benign, train_aes.n_rows().max(1), 80 + ri as u64);
        let model = train_svm(benign, train_aes);
        let mut row = vec![names[ri].clone()];
        for (ci, test_aes) in train_sets.iter().enumerate() {
            if ri == ci {
                row.push("—".to_string());
            } else {
                row.push(format!("{:.2}%", defense_rate(model.as_ref(), test_aes) * 100.0));
            }
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "(paper invariant: a system trained on a type fooling ASR set Λ defends any type\n\
         fooling Λ' ⊆ Λ at ~100%, while supersets of Λ can evade it)\n"
    );
}

/// Table XII: the comprehensive system trained on Types 4–6.
pub fn table12(ctx: &ExperimentContext) {
    println!("== Table XII: comprehensive system (trained on Type-4/5/6 MAE AEs) ==");
    let sets = build_sets(ctx);
    let mut train_aes = Mat::zeros(0, sets.per_type[3].n_cols());
    for i in 3..6 {
        for row in sets.per_type[i].rows() {
            train_aes.push_row(row);
        }
    }
    let benign = resample(&sets.benign, train_aes.n_rows(), 123);
    let data = Dataset::from_classes(benign, train_aes);
    let (train, test) = data.split(0.8, 11);
    let mut model = ClassifierKind::Svm.build();
    model.fit(&train);
    let m = BinaryMetrics::from_predictions(&model.predict_batch(test.features()), test.labels());
    println!(
        "held-out test: accuracy {:.2}%  FPR {:.2}%  FNR {:.2}%",
        m.accuracy() * 100.0,
        m.fpr() * 100.0,
        m.fnr() * 100.0
    );
    let mut t = Table::new(["Unseen-attack AE", "Defense rate"]);
    t.row([
        "Original AE".to_string(),
        format!("{:.2}%", defense_rate(model.as_ref(), &sets.original) * 100.0),
    ]);
    for i in 0..3 {
        t.row([
            MaeType::ALL[i].name().to_string(),
            format!("{:.2}%", defense_rate(model.as_ref(), &sets.per_type[i]) * 100.0),
        ]);
    }
    println!("{t}");
    println!("(paper: all four rows at 100%)\n");
}
