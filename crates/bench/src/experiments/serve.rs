//! Serving-engine load benchmark: throughput, latency percentiles,
//! cache hit rate, shedding and degradation under several load levels.
//!
//! Entirely offline and seeded: the corpus is the cached benign set, the
//! classifier trains on the cached score vectors, and every load level's
//! request sequence is deterministic. Results print as a table and are
//! written to `BENCH_serve.json` in the working directory.

use std::sync::Arc;

use mvp_asr::AsrProfile;
use mvp_audio::Waveform;
use mvp_ears::{DetectionSystem, SimilarityMethod};
use mvp_ml::ClassifierKind;
use mvp_serve::{
    run_load, DegradePolicy, DetectionEngine, EngineConfig, LoadMode, LoadReport, LoadSpec,
};

use crate::context::ExperimentContext;
use crate::experiments::THREE_AUX;
use crate::table::Table;

/// Output artifact path, relative to the working directory.
pub const ARTIFACT: &str = "BENCH_serve.json";

/// Runs every load level against a freshly started engine each and
/// writes [`ARTIFACT`].
pub fn run_serve_bench(ctx: &ExperimentContext) {
    println!("== serving engine: throughput/latency under load ==");
    let method = SimilarityMethod::default();
    let aux: Vec<AsrProfile> = THREE_AUX.to_vec();

    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(aux[0])
        .auxiliary(aux[1])
        .auxiliary(aux[2])
        .build();
    let benign_scores = ctx.benign_scores(&aux, method);
    let ae_scores = ctx.ae_scores(&aux, method, None);
    system.train_on_scores(&benign_scores, &ae_scores, ClassifierKind::Svm);
    let system = Arc::new(system);

    let corpus: Vec<Arc<Waveform>> =
        ctx.benign.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();
    // Request volume scales with the corpus so tiny stays in seconds.
    let requests = (corpus.len() * 3).clamp(24, 240);

    let base_config = EngineConfig {
        queue_cap: 64,
        max_batch: 8,
        max_delay_ms: 2,
        // Generous: deadline misses here would only add noise; the
        // degraded level forces degradation explicitly instead.
        deadline_ms: 120_000,
        aux_deadline_ms: Vec::new(),
        cache_cap: 256,
        ..EngineConfig::default()
    };

    struct Level {
        spec: LoadSpec,
        config: EngineConfig,
    }

    let levels = vec![
        Level {
            spec: LoadSpec {
                name: "closed-c2".into(),
                requests,
                mode: LoadMode::Closed { concurrency: 2 },
                duplicate_frac: 0.5,
                seed: 11,
            },
            config: base_config.clone(),
        },
        Level {
            spec: LoadSpec {
                name: "closed-c8".into(),
                requests,
                mode: LoadMode::Closed { concurrency: 8 },
                duplicate_frac: 0.5,
                seed: 12,
            },
            config: base_config.clone(),
        },
        Level {
            spec: LoadSpec {
                name: "open-100hz".into(),
                requests,
                mode: LoadMode::Open { rate_hz: 100.0, waiters: 4 },
                duplicate_frac: 0.5,
                seed: 13,
            },
            // Small queue so overload visibly sheds instead of buffering.
            config: EngineConfig { queue_cap: 16, ..base_config.clone() },
        },
        Level {
            spec: LoadSpec {
                name: "degraded-c4".into(),
                requests,
                mode: LoadMode::Closed { concurrency: 4 },
                duplicate_frac: 0.5,
                seed: 14,
            },
            // First auxiliary disabled: every verdict takes the
            // degradation path.
            config: EngineConfig { aux_deadline_ms: vec![Some(0)], ..base_config.clone() },
        },
    ];

    let n_aux = system.n_auxiliaries();
    let mut reports: Vec<LoadReport> = Vec::with_capacity(levels.len());
    for level in &levels {
        let policy =
            DegradePolicy::trained(n_aux, &benign_scores, &ae_scores, ClassifierKind::Knn, 0.05);
        let engine = DetectionEngine::start(Arc::clone(&system), policy, level.config.clone());
        let report = run_load(&engine, &corpus, &level.spec);
        engine.shutdown();
        reports.push(report);
    }

    let mut table = Table::new([
        "level",
        "offered",
        "done",
        "shed",
        "degraded",
        "rps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "cache hit",
    ]);
    for r in &reports {
        table.row([
            r.name.clone(),
            r.offered.to_string(),
            r.tally.total().to_string(),
            r.shed.to_string(),
            r.tally.degraded.to_string(),
            format!("{:.1}", r.throughput_rps),
            format!("{:.1}", r.stats.latency_p50_micros as f64 / 1e3),
            format!("{:.1}", r.stats.latency_p95_micros as f64 / 1e3),
            format!("{:.1}", r.stats.latency_p99_micros as f64 / 1e3),
            format!("{:.0}%", r.stats.cache_hit_rate() * 100.0),
        ]);
    }
    println!("{table}");

    let json = format!(
        "[\n  {}\n]\n",
        reports.iter().map(LoadReport::to_json).collect::<Vec<_>>().join(",\n  ")
    );
    match std::fs::write(ARTIFACT, &json) {
        Ok(()) => println!("wrote {ARTIFACT}\n"),
        Err(e) => println!("could not write {ARTIFACT}: {e}\n"),
    }
}
