//! Serving-engine load benchmark: throughput, latency percentiles,
//! cache hit rate, shedding and degradation under several load levels,
//! plus shard-router scaling and streaming early-exit levels.
//!
//! Entirely offline and seeded: the corpus is the cached benign set, the
//! classifier trains on the cached score vectors, and every load level's
//! request sequence is deterministic. Results print as a table and are
//! written to `BENCH_serve.json` in the working directory.
//!
//! The sharded levels are sized to expose **cache affinity**, not CPU
//! parallelism (CI runs on one core): the per-shard transcription cache
//! is deliberately smaller than the distinct-waveform working set, so a
//! single shard thrashes its LRU on every pass while four shards —
//! each home to a quarter of the content hashes — keep their residents
//! and answer repeat passes from cache.

use std::sync::Arc;

use mvp_asr::AsrProfile;
use mvp_audio::Waveform;
use mvp_ears::{DetectionSystem, EarlyExit, SimilarityMethod};
use mvp_ml::ClassifierKind;
use mvp_serve::{
    run_load, DegradePolicy, DetectionEngine, EngineConfig, LoadMode, LoadReport, LoadSpec,
    RouterConfig, ShardRouter,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::context::ExperimentContext;
use crate::experiments::THREE_AUX;
use crate::table::Table;

/// Output artifact path, relative to the working directory.
pub const ARTIFACT: &str = "BENCH_serve.json";

/// Splices router-level fields (shard count, per-shard cache hit rates,
/// steal counters) into a [`LoadReport`] JSON object so every
/// `BENCH_serve.json` entry stays one flat object.
fn sharded_json(report: &LoadReport, n_shards: usize, hit_rates: &[f64], steals: &[u64]) -> String {
    let base = report.to_json();
    let rates: Vec<String> = hit_rates.iter().map(|r| format!("{r:.4}")).collect();
    let steals: Vec<String> = steals.iter().map(u64::to_string).collect();
    format!(
        "{},\"n_shards\":{},\"shard_cache_hit_rates\":[{}],\"steal_counts\":[{}]}}",
        &base[..base.len() - 1],
        n_shards,
        rates.join(","),
        steals.join(","),
    )
}

/// Runs every load level against a freshly started engine each and
/// writes [`ARTIFACT`].
pub fn run_serve_bench(ctx: &ExperimentContext) {
    println!("== serving engine: throughput/latency under load ==");
    let method = SimilarityMethod::default();
    let aux: Vec<AsrProfile> = THREE_AUX.to_vec();

    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(aux[0])
        .auxiliary(aux[1])
        .auxiliary(aux[2])
        .build();
    let benign_scores = ctx.benign_scores(&aux, method);
    let ae_scores = ctx.ae_scores(&aux, method, None);
    system.train_on_scores(&benign_scores, &ae_scores, ClassifierKind::Svm);
    let system = Arc::new(system);

    let corpus: Vec<Arc<Waveform>> =
        ctx.benign.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();
    // Request volume scales with the corpus so tiny stays in seconds.
    let requests = (corpus.len() * 3).clamp(24, 240);

    let base_config = EngineConfig {
        queue_cap: 64,
        max_batch: 8,
        max_delay_ms: 2,
        // Generous: deadline misses here would only add noise; the
        // degraded level forces degradation explicitly instead.
        deadline_ms: 120_000,
        aux_deadline_ms: Vec::new(),
        cache_cap: 256,
        ..EngineConfig::default()
    };

    struct Level {
        spec: LoadSpec,
        config: EngineConfig,
    }

    let levels = vec![
        Level {
            spec: LoadSpec {
                name: "closed-c2".into(),
                requests,
                mode: LoadMode::Closed { concurrency: 2 },
                duplicate_frac: 0.5,
                seed: 11,
            },
            config: base_config.clone(),
        },
        Level {
            spec: LoadSpec {
                name: "closed-c8".into(),
                requests,
                mode: LoadMode::Closed { concurrency: 8 },
                duplicate_frac: 0.5,
                seed: 12,
            },
            config: base_config.clone(),
        },
        Level {
            spec: LoadSpec {
                name: "open-100hz".into(),
                requests,
                mode: LoadMode::Open { rate_hz: 100.0, waiters: 4 },
                duplicate_frac: 0.5,
                seed: 13,
            },
            // Small queue so overload visibly sheds instead of buffering.
            config: EngineConfig { queue_cap: 16, ..base_config.clone() },
        },
        Level {
            spec: LoadSpec {
                name: "degraded-c4".into(),
                requests,
                mode: LoadMode::Closed { concurrency: 4 },
                duplicate_frac: 0.5,
                seed: 14,
            },
            // First auxiliary disabled: every verdict takes the
            // degradation path.
            config: EngineConfig { aux_deadline_ms: vec![Some(0)], ..base_config.clone() },
        },
    ];

    let n_aux = system.n_auxiliaries();
    let policy = |_shard: usize| {
        DegradePolicy::trained(n_aux, &benign_scores, &ae_scores, ClassifierKind::Knn, 0.05)
    };
    // (json entry, table row) per level.
    let mut entries: Vec<String> = Vec::new();
    let mut table = Table::new([
        "level",
        "offered",
        "done",
        "shed",
        "degraded",
        "rps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "cache hit",
        "early",
        "steals",
    ]);
    let mut row = |r: &LoadReport, early: String, steals: String| {
        table.row([
            r.name.clone(),
            r.offered.to_string(),
            r.tally.total().to_string(),
            r.shed.to_string(),
            r.tally.degraded.to_string(),
            format!("{:.1}", r.throughput_rps),
            format!("{:.1}", r.stats.latency_p50_micros as f64 / 1e3),
            format!("{:.1}", r.stats.latency_p95_micros as f64 / 1e3),
            format!("{:.1}", r.stats.latency_p99_micros as f64 / 1e3),
            format!("{:.0}%", r.stats.cache_hit_rate() * 100.0),
            early,
            steals,
        ]);
    };

    for level in &levels {
        let engine = DetectionEngine::start(Arc::clone(&system), policy(0), level.config.clone());
        let report = run_load(&engine, &corpus, &level.spec);
        engine.shutdown();
        row(&report, "-".into(), "-".into());
        entries.push(report.to_json());
    }

    // Shard-scaling levels: fixed working set, per-shard cache smaller
    // than the set, zero duplicates — every pass walks all distinct
    // waveforms, so hit rate is pure affinity.
    let distinct = corpus.len();
    let shard_engine = EngineConfig { cache_cap: (distinct / 3).max(2), ..base_config.clone() };
    for n_shards in [1usize, 2, 4] {
        let spec = LoadSpec {
            name: format!("sharded-x{n_shards}"),
            requests: distinct * 3,
            mode: LoadMode::Closed { concurrency: 4 },
            duplicate_frac: 0.0,
            seed: 21,
        };
        let config = RouterConfig {
            n_shards,
            // High enough that closed-loop depths never trigger steals:
            // the levels measure affinity, not steal throughput.
            steal_depth: 64,
            engine: shard_engine.clone(),
        };
        let router = ShardRouter::start(Arc::clone(&system), config, |shard| policy(shard));
        let report = run_load(&router, &corpus, &spec);
        let hit_rates: Vec<f64> = router.shard_stats().iter().map(|s| s.cache_hit_rate()).collect();
        let steals = router.steal_counts();
        router.shutdown();
        row(&report, "-".into(), steals.iter().sum::<u64>().to_string());
        entries.push(sharded_json(&report, n_shards, &hit_rates, &steals));
    }

    // Streaming level: benign utterances plus seeded noise bursts (which
    // the classifier flags adversarial), chunked ingress with the
    // default early-exit rule armed — reports early-exit rate and
    // time-to-verdict.
    let mut stream_corpus = Vec::with_capacity(corpus.len() * 2);
    let mut rng = StdRng::seed_from_u64(31);
    for wave in &corpus {
        // Interleaved benign/noise so any schedule prefix sees both.
        stream_corpus.push(Arc::clone(wave));
        let samples: Vec<f32> = (0..16_000).map(|_| rng.gen_range(-0.4f32..0.4)).collect();
        stream_corpus.push(Arc::new(Waveform::from_samples(samples, 16_000)));
    }
    let spec = LoadSpec {
        name: "streaming-c2".into(),
        // Streams are paced to real time, so volume stays modest.
        requests: stream_corpus.len().min(24),
        mode: LoadMode::Streaming { concurrency: 2, chunk_ms: 60 },
        duplicate_frac: 0.0,
        seed: 41,
    };
    let config = EngineConfig { early_exit: Some(EarlyExit::default()), ..base_config.clone() };
    let engine = DetectionEngine::start(Arc::clone(&system), policy(0), config);
    let report = run_load(&engine, &stream_corpus, &spec);
    engine.shutdown();
    row(
        &report,
        format!(
            "{}/{} ({:.0}ms ttv)",
            report.early_exits,
            report.offered,
            report.mean_time_to_verdict_us / 1e3
        ),
        "-".into(),
    );
    entries.push(report.to_json());

    println!("{table}");

    let json = format!("[\n  {}\n]\n", entries.join(",\n  "));
    match std::fs::write(ARTIFACT, &json) {
        Ok(()) => println!("wrote {ARTIFACT}\n"),
        Err(e) => println!("could not write {ARTIFACT}: {e}\n"),
    }
}
