//! Quantization-plane benchmark: the int8 acoustic model as a *cheap
//! precision-diverse ensemble member* (the PVP axis from PAPERS.md).
//!
//! Three questions, one artifact (`BENCH_quant.json`):
//!
//! 1. **Throughput** — single-stream acoustic-model inference, int8 vs
//!    f64, per profile. The win lives at the acoustic-model level: the
//!    MFCC frontend dominates end-to-end transcription (~¾ of the wall
//!    time, Amdahl), so the headline figure is AM inference on the
//!    largest model (GCS), where the i8 GEMM's 32-lane accumulation
//!    pays. End-to-end transcription throughput is reported alongside,
//!    honestly, for both precisions.
//! 2. **Agreement** — how often the int8 target (DS0-I8) transcribes
//!    benign audio identically to its f64 parent. High agreement means
//!    quantization is a *version* in the multiversion sense: same
//!    behaviour on clean inputs, divergent behaviour under adversarial
//!    perturbations that straddle the coarser numeric grid.
//! 3. **Detection** — AUC of three ensembles on the cached AE dataset:
//!    precision-only (DS0 vs its own int8 twin, zero extra architectures),
//!    profile-only (the paper's DS1+GCS+AT similarity baseline), and the
//!    mixed ensemble carrying both diversity axes.

use std::time::Instant;

use mvp_asr::{AmScratch, Asr, AsrProfile};
use mvp_audio::Waveform;
use mvp_dsp::mfcc::FeatureMatrix;
use mvp_ears::SimilarityMethod;
use mvp_ml::{auc, roc_curve, Classifier, Dataset, LogisticRegression, Mat};

use crate::context::{score_mat, ExperimentContext};
use crate::experiments::THREE_AUX;
use crate::table::Table;

/// Output artifact path, relative to the working directory.
pub const ARTIFACT: &str = "BENCH_quant.json";

/// Acoustic-model profiles timed in the throughput table. GCS carries
/// the headline: it is the widest model (dim 91, hidden 96), the shape
/// where int8 GEMM beats f64 by the largest margin.
const AM_PROFILES: [AsrProfile; 3] = [AsrProfile::Ds0, AsrProfile::Gcs, AsrProfile::Kaldi];

/// One profile's acoustic-model timing at both precisions.
struct AmTiming {
    profile: AsrProfile,
    frames: usize,
    f64_us: f64,
    i8_us: f64,
}

impl AmTiming {
    fn speedup(&self) -> f64 {
        self.f64_us / self.i8_us
    }
}

/// Best-of-5 mean wall time per round, with one untimed warm-up round.
fn time_us(rounds: usize, mut work: impl FnMut()) -> f64 {
    work();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..rounds {
            work();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e6 / rounds as f64);
    }
    best
}

/// Times one profile's acoustic model over the benign corpus features,
/// f64 vs int8. The features are precomputed so only the AM is on the
/// clock; both paths reuse one scratch, as the serve workers do.
fn am_timing(ctx: &ExperimentContext, profile: AsrProfile) -> AmTiming {
    let models = ctx.models_dir();
    let asr = profile.trained_in(Some(&models));
    let quant = profile.trained_quantized_in(Some(&models));
    let feats: Vec<FeatureMatrix> =
        ctx.benign.utterances().iter().map(|u| asr.frontend().features(&u.wave)).collect();
    let frames: usize = feats.iter().map(FeatureMatrix::n_frames).sum();
    let am = asr.acoustic_model();
    let qam = quant.quantized_model().expect("quantized variant carries an int8 model");
    let mut scratch = AmScratch::default();
    let mut out = FeatureMatrix::default();
    let f64_us = time_us(20, || {
        for f in &feats {
            am.logit_matrix_into(f, &mut scratch, &mut out);
        }
        std::hint::black_box(&out);
    });
    let i8_us = time_us(20, || {
        for f in &feats {
            qam.logit_matrix_into(f, &mut scratch, &mut out);
        }
        std::hint::black_box(&out);
    });
    AmTiming { profile, frames, f64_us, i8_us }
}

/// The logistic-regression AUC of one ensemble's score rows (label 0 =
/// benign, 1 = adversarial), mirroring the modality benchmark's scorer
/// so the three ensembles compare on one calibrated footing.
fn ensemble_auc(rows: &[(usize, Vec<f64>)]) -> f64 {
    let dim = rows.first().map_or(0, |(_, r)| r.len());
    let n = rows.len().max(1) as f64;
    let mean: Vec<f64> =
        (0..dim).map(|j| rows.iter().map(|(_, r)| r[j]).sum::<f64>() / n).collect();
    let std: Vec<f64> = (0..dim)
        .map(|j| {
            let var = rows.iter().map(|(_, r)| (r[j] - mean[j]).powi(2)).sum::<f64>() / n;
            var.sqrt().max(1e-9)
        })
        .collect();
    let zscore = |r: &[f64]| -> Vec<f64> {
        r.iter().enumerate().map(|(j, v)| (v - mean[j]) / std[j]).collect()
    };
    let class = |label: usize| -> Mat {
        score_mat(rows.iter().filter(|(l, _)| *l == label).map(|(_, r)| zscore(r)).collect())
    };
    let data = Dataset::from_classes(class(0), class(1));
    let mut lr = LogisticRegression::new();
    lr.fit(&data);
    // Flip P(adversarial) so higher = more benign, matching `roc_curve`'s
    // low-score-is-positive sweep.
    let scores: Vec<f64> = rows.iter().map(|(_, r)| 1.0 - lr.probability(&zscore(r))).collect();
    let labels: Vec<usize> = rows.iter().map(|(l, _)| *l).collect();
    auc(&roc_curve(&scores, &labels))
}

/// Times the acoustic models, measures benign int8/f64 transcript
/// agreement, evaluates the three ensembles and writes [`ARTIFACT`].
pub fn run_quant_bench(ctx: &ExperimentContext) {
    println!("== quantization plane: int8 inference as a precision-diverse ensemble member ==");
    let method = SimilarityMethod::default();
    let models = ctx.models_dir();

    // 1. Acoustic-model inference throughput, int8 vs f64.
    let timings: Vec<AmTiming> = AM_PROFILES.iter().map(|&p| am_timing(ctx, p)).collect();
    let mut table = Table::new(["acoustic model", "frames", "f64 us", "int8 us", "speedup"]);
    for t in &timings {
        table.row([
            t.profile.name().to_string(),
            format!("{}", t.frames),
            format!("{:.0}", t.f64_us),
            format!("{:.0}", t.i8_us),
            format!("{:.2}x", t.speedup()),
        ]);
    }
    println!("{table}");
    let headline =
        timings.iter().find(|t| t.profile == AsrProfile::Gcs).expect("GCS timed").speedup();

    // End-to-end single-stream transcription, both precisions — the
    // honest Amdahl figure: the frontend dominates, so this ratio stays
    // near 1 however fast the int8 GEMM is.
    let ds0 = AsrProfile::Ds0.trained_in(Some(&models));
    let ds0_i8 = AsrProfile::Ds0.trained_quantized_in(Some(&models));
    let waves: Vec<&Waveform> = ctx.benign.utterances().iter().map(|u| &u.wave).collect();
    let f64_stream_us = time_us(2, || {
        for w in &waves {
            std::hint::black_box(ds0.transcribe(w));
        }
    });
    let i8_stream_us = time_us(2, || {
        for w in &waves {
            std::hint::black_box(ds0_i8.transcribe(w));
        }
    });
    let f64_rps = waves.len() as f64 / (f64_stream_us / 1e6);
    let i8_rps = waves.len() as f64 / (i8_stream_us / 1e6);
    println!(
        "AM inference speedup (GCS, headline): {headline:.2}x; end-to-end transcription: \
         f64 {f64_rps:.1} rps vs int8 {i8_rps:.1} rps ({:.2}x — frontend-bound, see DESIGN.md)",
        i8_rps / f64_rps
    );

    // 2. Benign transcript agreement: DS0-I8 vs the cached f64 DS0.
    // The int8 variant is not a transcript-cache column, so transcribe
    // directly; ids pair each text with its cached f64 counterpart.
    let i8_text = |wave: &Waveform| ds0_i8.transcribe(wave);
    let benign_i8: Vec<(String, String)> =
        ctx.benign.utterances().iter().map(|u| (format!("b{}", u.id), i8_text(&u.wave))).collect();
    let exact =
        benign_i8.iter().filter(|(id, text)| ctx.transcript(id, AsrProfile::Ds0) == text).count();
    let agreement = exact as f64 / benign_i8.len().max(1) as f64;
    let mean_sim = benign_i8
        .iter()
        .map(|(id, text)| method.score(ctx.transcript(id, AsrProfile::Ds0), text))
        .sum::<f64>()
        / benign_i8.len().max(1) as f64;
    println!(
        "benign agreement (DS0-I8 vs DS0): {exact}/{} exact ({:.1}%), mean similarity {mean_sim:.3}",
        benign_i8.len(),
        agreement * 100.0
    );

    // 3. Detector AUC: precision-only vs profile-only vs mixed. The
    // precision column is the similarity between the f64 target's
    // transcript and its own int8 twin's.
    let precision_score = |id: &str, wave: &Waveform| -> f64 {
        method.score(ctx.transcript(id, AsrProfile::Ds0), &i8_text(wave))
    };
    let mut precision_rows = Vec::new();
    let mut profile_rows = Vec::new();
    let mut mixed_rows = Vec::new();
    let samples = ctx
        .benign
        .utterances()
        .iter()
        .map(|u| (0usize, format!("b{}", u.id), &u.wave))
        .chain(ctx.aes.iter().map(|(id, ae)| (1usize, id.clone(), &ae.wave)));
    for (label, id, wave) in samples {
        let p = precision_score(&id, wave);
        let profile = ctx.score_vector(&id, &THREE_AUX, method);
        precision_rows.push((label, vec![p]));
        let mut mixed = profile.clone();
        mixed.push(p);
        profile_rows.push((label, profile));
        mixed_rows.push((label, mixed));
    }
    let precision_auc = ensemble_auc(&precision_rows);
    let profile_auc = ensemble_auc(&profile_rows);
    let mixed_auc = ensemble_auc(&mixed_rows);
    let mut atable = Table::new(["ensemble", "auxiliaries", "AUC"]);
    atable.row(["precision-only".to_string(), "DS0-I8".to_string(), format!("{precision_auc:.4}")]);
    atable.row([
        "profile-only".to_string(),
        ExperimentContext::system_name(&THREE_AUX),
        format!("{profile_auc:.4}"),
    ]);
    atable.row([
        "mixed".to_string(),
        "DS0+{DS1, GCS, AT, DS0-I8}".to_string(),
        format!("{mixed_auc:.4}"),
    ]);
    println!("{atable}");

    let am_json: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"profile\": \"{}\", \"frames\": {}, \"f64_us\": {:.3}, \
                 \"int8_us\": {:.3}, \"speedup\": {:.4}}}",
                t.profile.name(),
                t.frames,
                t.f64_us,
                t.i8_us,
                t.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"am\": [\n{}\n  ],\n  \"am_headline_speedup\": {headline:.4},\n  \
         \"transcribe_f64_rps\": {f64_rps:.3},\n  \"transcribe_int8_rps\": {i8_rps:.3},\n  \
         \"transcribe_speedup\": {:.4},\n  \"benign_agreement\": {agreement:.4},\n  \
         \"benign_mean_similarity\": {mean_sim:.4},\n  \"aucs\": {{\"precision_only\": \
         {precision_auc:.4}, \"profile_only\": {profile_auc:.4}, \"mixed\": {mixed_auc:.4}}}\n}}\n",
        am_json.join(",\n"),
        i8_rps / f64_rps,
    );
    match std::fs::write(ARTIFACT, &json) {
        Ok(()) => println!("wrote {ARTIFACT}\n"),
        Err(e) => println!("could not write {ARTIFACT}: {e}\n"),
    }
}
