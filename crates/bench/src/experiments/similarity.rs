//! Table III: accuracy of the six similarity-calculation methods on the
//! four multi-auxiliary systems (SVM, 80/20 split).

use mvp_ears::SimilarityMethod;
use mvp_ml::{BinaryMetrics, ClassifierKind, Dataset};

use crate::context::{score_mat, ExperimentContext};
use crate::table::Table;

use super::MULTI_AUX;

/// Evaluates one (method, system) cell: 80/20 stratified split, SVM.
pub fn evaluate_method(
    ctx: &ExperimentContext,
    method: SimilarityMethod,
    aux: &[mvp_asr::AsrProfile],
) -> BinaryMetrics {
    let data = Dataset::from_classes(
        score_mat(ctx.benign_scores(aux, method)),
        score_mat(ctx.ae_scores(aux, method, None)),
    );
    let (train, test) = data.split(0.8, 7);
    let mut model = ClassifierKind::Svm.build();
    model.fit(&train);
    let preds = model.predict_batch(test.features());
    BinaryMetrics::from_predictions(&preds, test.labels())
}

/// Table III.
pub fn table3(ctx: &ExperimentContext) {
    println!("== Table III: accuracies of different similarity calculation methods ==");
    let mut header = vec!["Similarity Method".to_string(), "Metric".to_string()];
    header.extend(MULTI_AUX.iter().map(|aux| ExperimentContext::system_name(aux)));
    let mut t = Table::new(header);
    for method in SimilarityMethod::paper_methods() {
        let cells: Vec<BinaryMetrics> =
            MULTI_AUX.iter().map(|aux| evaluate_method(ctx, method, aux)).collect();
        let row = |metric: &str, f: &dyn Fn(&BinaryMetrics) -> String| {
            let mut r = vec![method.name(), metric.to_string()];
            r.extend(cells.iter().map(f));
            r
        };
        t.row(row("Accuracy", &|m| mvp_ears::eval::ratio_cell(m.tp + m.tn, m.total())));
        t.row(row("FPR", &|m| mvp_ears::eval::ratio_cell(m.fp, m.fp + m.tn)));
        t.row(row("FNR", &|m| mvp_ears::eval::ratio_cell(m.fn_, m.fn_ + m.tp)));
    }
    println!("{t}");
    // The paper's conclusion: PE_JaroWinkler achieves the top accuracy. At
    // small scales several methods tie; `>=` lets the later (phonetically
    // encoded) method claim a tie, matching the paper's preference order.
    let mut best = (String::new(), -1.0);
    let mut tied = Vec::new();
    for method in SimilarityMethod::paper_methods() {
        let mean: f64 =
            MULTI_AUX.iter().map(|aux| evaluate_method(ctx, method, aux).accuracy()).sum::<f64>()
                / MULTI_AUX.len() as f64;
        if (mean - best.1).abs() < 1e-12 {
            tied.push(method.name());
        } else if mean > best.1 {
            best = (method.name(), mean);
            tied = vec![method.name()];
        }
    }
    println!(
        "best mean accuracy: {} ({:.2}%){}\n",
        tied.last().expect("at least one method"),
        best.1 * 100.0,
        if tied.len() > 1 { format!("  [tied: {}]", tied.join(", ")) } else { String::new() }
    );
}
