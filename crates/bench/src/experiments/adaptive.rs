//! Extension experiment (beyond the paper): *real* multiple-ASR-effective
//! AEs via the joint ensemble attack, used to validate the §V-H proactive
//! defense on actual audio.
//!
//! The paper synthesizes hypothetical MAE AEs at the feature-vector level
//! because no method existed to build them. The simulated substrate lets
//! us build them for real (Liu et al.'s ensemble route), and then check
//! the paper's two claims directly:
//!
//! 1. a detector whose auxiliaries are all fooled (DS0+{DS1} vs an AE
//!    crafted against both) is blind to the attack;
//! 2. the comprehensive proactive system (trained on synthesized
//!    Type-4/5/6 vectors) still catches it, because GCS and AT disagree.

use mvp_asr::{Asr, AsrProfile};
use mvp_attack::{joint_attack, WhiteBoxConfig};
use mvp_corpus::{command_phrases, CorpusBuilder, CorpusConfig};
use mvp_ears::{SimilarityMethod, ThresholdDetector};
use mvp_ml::{Classifier, ClassifierKind, Dataset};
use mvp_textsim::wer;

use crate::context::{score_mat, ExperimentContext};
use crate::experiments::mae::build_sets;
use crate::experiments::THREE_AUX;
use crate::table::Table;

/// Runs the adaptive / real-MAE experiment.
pub fn adaptive(ctx: &ExperimentContext) {
    println!("== Extension: real multiple-ASR-effective AEs (joint ensemble attack) ==");
    let ds0 = AsrProfile::Ds0.trained();
    let ds1 = AsrProfile::Ds1.trained();
    let gcs = AsrProfile::Gcs.trained();
    let at = AsrProfile::At.trained();
    let method = SimilarityMethod::default();

    let hosts = CorpusBuilder::new(CorpusConfig {
        size: 3,
        seed: 271_828,
        noise_prob: 0.0,
        ..CorpusConfig::default()
    })
    .build();
    let cmds = command_phrases();

    // 1. Craft real AE(DS0, DS1) audio.
    let ensemble = [ds0.as_ref(), ds1.as_ref()];
    let mut mae_waves = Vec::new();
    let mut t = Table::new(["command", "fools DS0", "fools DS1", "fools GCS", "fools AT"]);
    for (i, u) in hosts.utterances().iter().enumerate() {
        let cmd = cmds[i % cmds.len()];
        let out = joint_attack(&ensemble, &u.wave, cmd, &WhiteBoxConfig::for_ensemble());
        let fools = |asr: &dyn Asr| wer(cmd, &asr.transcribe(&out.outcome.adversarial)) == 0.0;
        t.row([
            cmd.to_string(),
            fools(ds0.as_ref()).to_string(),
            fools(ds1.as_ref()).to_string(),
            fools(gcs.as_ref()).to_string(),
            fools(at.as_ref()).to_string(),
        ]);
        if out.fools_all() {
            mae_waves.push(out.outcome.adversarial);
        }
    }
    println!("{t}");
    if mae_waves.is_empty() {
        println!("(no joint attack succeeded; nothing further to evaluate)\n");
        return;
    }

    // Score the real MAE AEs through the three-auxiliary feature map.
    let score = |wave: &mvp_audio::Waveform| -> Vec<f64> {
        let target = ds0.transcribe(wave);
        [&ds1, &gcs, &at].iter().map(|asr| method.score(&target, &asr.transcribe(wave))).collect()
    };
    let mae_scores: Vec<Vec<f64>> = mae_waves.iter().map(score).collect();

    // 2. The DS0+{DS1} detector is blind: the DS1 similarity looks benign.
    let benign_ds1: Vec<f64> =
        ctx.benign_scores(&[AsrProfile::Ds1], method).into_iter().map(|v| v[0]).collect();
    let det = ThresholdDetector::fit_benign(&benign_ds1, 0.05);
    let caught_by_pair = mae_scores.iter().filter(|v| det.is_adversarial(v[0])).count();
    println!(
        "DS0+{{DS1}} threshold detector catches {caught_by_pair}/{} real MAE AEs \
         (expected ~0: both of its models are fooled)",
        mae_scores.len()
    );

    // 3. The comprehensive proactive system (trained on synthesized
    //    Type-4/5/6 vectors, never on real MAE audio) catches them.
    let sets = build_sets(ctx);
    let mut train_aes = mvp_ml::Mat::zeros(0, sets.per_type[3].n_cols());
    for i in 3..6 {
        for row in sets.per_type[i].rows() {
            train_aes.push_row(row);
        }
    }
    let benign: Vec<Vec<f64>> =
        (0..train_aes.n_rows()).map(|i| sets.benign[i % sets.benign.len()].clone()).collect();
    let data = Dataset::from_classes(score_mat(benign), train_aes);
    let mut model: Box<dyn Classifier> = ClassifierKind::Svm.build();
    model.fit(&data);
    let caught = mae_scores.iter().filter(|v| model.predict(v) == 1).count();
    println!(
        "comprehensive proactive system (DS0+{{{}}}) catches {caught}/{} real MAE AEs",
        THREE_AUX.map(|p| p.name()).join(", "),
        mae_scores.len()
    );
    println!(
        "(this validates §V-H on real audio: proactive training defends against\n\
         transferable AEs that fool a strict subset of the auxiliaries)\n"
    );
}
