//! Data-plane microbenchmark: steady-state batch transcription with a
//! persistent scratch plan vs the per-call allocating path, plus the
//! latency of one white-box gradient step (the hottest loop in AE
//! generation). Results print as a table and are written to
//! `BENCH_dataplane.json` in the working directory.

use std::time::Instant;

use mvp_asr::{Asr, AsrProfile, AsrScratch, TrainedAsr};
use mvp_audio::Waveform;

use crate::context::ExperimentContext;
use crate::table::Table;

/// Output artifact path, relative to the working directory.
pub const ARTIFACT: &str = "BENCH_dataplane.json";

/// Rounds each transcription path runs; the first batch round pays the
/// one-time scratch growth, later rounds are the steady state the serve
/// workers live in.
const ROUNDS: usize = 3;

/// Gradient steps timed for the white-box latency figure.
const GRAD_STEPS: usize = 5;

/// Benchmarks the two transcription paths and the white-box gradient
/// step on the DS0 recogniser, then writes [`ARTIFACT`].
pub fn run_dataplane_bench(ctx: &ExperimentContext) {
    println!("== data plane: scratch-plan throughput and grad-step latency ==");
    let asr = AsrProfile::Ds0.trained();
    let waves: Vec<&Waveform> = ctx.benign.utterances().iter().map(|u| &u.wave).collect();
    let items = waves.len();

    // Per-call path: every transcription allocates its own buffers.
    let t0 = Instant::now();
    let mut per_call_out = Vec::new();
    for _ in 0..ROUNDS {
        per_call_out = waves.iter().map(|w| asr.transcribe(w)).collect::<Vec<_>>();
    }
    let per_call = t0.elapsed();

    // Batch path: one scratch plan reused across every batch, as the
    // serve workers hold it. Warm once so growth is off the clock.
    let mut scratch = AsrScratch::default();
    let _ = asr.transcribe_batch_with(&waves, &mut scratch);
    let t1 = Instant::now();
    let mut batch_out = Vec::new();
    for _ in 0..ROUNDS {
        batch_out = asr.transcribe_batch_with(&waves, &mut scratch);
    }
    let batch = t1.elapsed();
    assert_eq!(per_call_out, batch_out, "scratch path diverged from per-call path");

    // White-box gradient step: loss + input gradient for one command
    // target, the unit of work Algorithm 1 repeats thousands of times.
    let target = TrainedAsr::target_indices("open the door");
    let host = waves[0];
    let _ = asr.attack_loss_and_input_grad(host, &target, 0.1);
    let t2 = Instant::now();
    for _ in 0..GRAD_STEPS {
        let _ = asr.attack_loss_and_input_grad(host, &target, 0.1);
    }
    let grad_step_ms = t2.elapsed().as_secs_f64() * 1e3 / GRAD_STEPS as f64;

    let n = (items * ROUNDS) as f64;
    let per_call_rps = n / per_call.as_secs_f64();
    let batch_rps = n / batch.as_secs_f64();
    let mut table = Table::new(["path", "items", "wall ms", "items/s"]);
    table.row([
        "transcribe (alloc per call)".to_string(),
        format!("{}", items * ROUNDS),
        format!("{:.1}", per_call.as_secs_f64() * 1e3),
        format!("{per_call_rps:.1}"),
    ]);
    table.row([
        "transcribe_batch_with (scratch)".to_string(),
        format!("{}", items * ROUNDS),
        format!("{:.1}", batch.as_secs_f64() * 1e3),
        format!("{batch_rps:.1}"),
    ]);
    println!("{table}");
    println!(
        "scratch speedup: {:.2}x; white-box grad step: {grad_step_ms:.1} ms (mean of {GRAD_STEPS})",
        batch_rps / per_call_rps
    );

    let json = format!(
        "{{\n  \"items\": {items},\n  \"rounds\": {ROUNDS},\n  \
         \"per_call_rps\": {per_call_rps:.3},\n  \"batch_scratch_rps\": {batch_rps:.3},\n  \
         \"scratch_speedup\": {:.4},\n  \"grad_step_ms\": {grad_step_ms:.3},\n  \
         \"grad_steps\": {GRAD_STEPS}\n}}\n",
        batch_rps / per_call_rps
    );
    match std::fs::write(ARTIFACT, &json) {
        Ok(()) => println!("wrote {ARTIFACT}\n"),
        Err(e) => println!("could not write {ARTIFACT}: {e}\n"),
    }
}
