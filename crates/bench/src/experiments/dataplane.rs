//! Data-plane microbenchmark: steady-state batch transcription with a
//! persistent scratch plan vs the per-call allocating path, the latency
//! of one white-box gradient step (the hottest loop in AE generation),
//! and a per-kernel breakdown of the kernel plane — each tuned primitive
//! timed against its scalar oracle, plus end-to-end single-stream
//! transcription throughput in both modes. Results print as tables and
//! are written to `BENCH_dataplane.json` in the working directory.

use std::time::Instant;

use mvp_asr::{Asr, AsrProfile, AsrScratch, TrainedAsr};
use mvp_audio::Waveform;
use mvp_dsp::kernel::{self, DctPlan, RfftPlan, RfftScratch};
use mvp_dsp::mel::MelFilterbank;
use mvp_dsp::Complex;

use crate::context::ExperimentContext;
use crate::table::Table;

/// Output artifact path, relative to the working directory.
pub const ARTIFACT: &str = "BENCH_dataplane.json";

/// Rounds each transcription path runs; the first batch round pays the
/// one-time scratch growth, later rounds are the steady state the serve
/// workers live in.
const ROUNDS: usize = 3;

/// Gradient steps timed for the white-box latency figure.
const GRAD_STEPS: usize = 5;

/// Deterministic fill for kernel microbench inputs (xorshift; the bench
/// needs representative magnitudes, not statistical quality).
fn lcg_fill(buf: &mut [f64], mut seed: u64) {
    for v in buf.iter_mut() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        *v = (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
}

/// One micro-kernel's scalar-vs-vectorized wall time.
struct KernelTiming {
    name: &'static str,
    scalar_us: f64,
    vector_us: f64,
}

impl KernelTiming {
    fn speedup(&self) -> f64 {
        self.scalar_us / self.vector_us
    }
}

/// Times `work` for `reps` repetitions in both kernel modes. The
/// vectorized pass runs first in each pair so neither mode monopolises
/// warm caches.
fn time_modes(reps: usize, mut work: impl FnMut()) -> (f64, f64) {
    let mut run = |reps: usize| {
        let t = Instant::now();
        for _ in 0..reps {
            work();
        }
        t.elapsed().as_secs_f64() * 1e6 / reps as f64
    };
    run(reps.div_ceil(4)); // warm-up, untimed
    let vector_us = run(reps);
    kernel::force_scalar(true);
    let scalar_us = run(reps);
    kernel::force_scalar(false);
    (scalar_us, vector_us)
}

/// Per-kernel breakdown: each tuned primitive against its scalar oracle
/// on shapes matching the MFCC/acoustic-model hot path.
fn kernel_breakdown() -> Vec<KernelTiming> {
    let mut out = Vec::new();

    // rfft: one 512-point analysis frame, the spectrogram/MFCC unit.
    let plan = RfftPlan::new(512);
    let mut scratch = RfftScratch::default();
    let mut frame = vec![0.0; 512];
    lcg_fill(&mut frame, 0x5eed_0001);
    let mut spec = vec![Complex::default(); 257];
    let (scalar_us, vector_us) = time_modes(4000, || {
        plan.forward(&frame, &mut scratch, &mut spec);
        std::hint::black_box(&spec);
    });
    out.push(KernelTiming { name: "rfft 512", scalar_us, vector_us });

    // gemv: one hidden-layer application at acoustic-model shape.
    let (hidden, dim) = (64, 400);
    let mut w = vec![0.0; hidden * dim];
    let mut x = vec![0.0; dim];
    lcg_fill(&mut w, 0x5eed_0002);
    lcg_fill(&mut x, 0x5eed_0003);
    let mut hid = vec![0.0; hidden];
    let (scalar_us, vector_us) = time_modes(4000, || {
        if kernel::scalar_forced() {
            for (h, row) in hid.iter_mut().zip(w.chunks_exact(dim)) {
                *h = kernel::scalar::dot(row, &x);
            }
        } else {
            kernel::gemv(&w, dim, &x, &mut hid);
        }
        std::hint::black_box(&hid);
    });
    out.push(KernelTiming { name: "gemv 64x400", scalar_us, vector_us });

    // mel: fused in-range filterbank vs the dense scalar sweep.
    let bank = MelFilterbank::new(26, 512, 16_000.0, 0.0, 8_000.0);
    let mut power = vec![0.0; bank.n_bins()];
    lcg_fill(&mut power, 0x5eed_0004);
    for p in &mut power {
        *p = p.abs();
    }
    let mut mel = vec![0.0; bank.n_filters()];
    let (scalar_us, vector_us) = time_modes(20_000, || {
        bank.apply_into(&power, &mut mel);
        std::hint::black_box(&mel);
    });
    out.push(KernelTiming { name: "mel 26x257", scalar_us, vector_us });

    // dct: cepstral truncation at MFCC shape.
    let dct = DctPlan::new(26, 13);
    let mut logmel = vec![0.0; 26];
    lcg_fill(&mut logmel, 0x5eed_0005);
    let mut cep = vec![0.0; 13];
    let (scalar_us, vector_us) = time_modes(40_000, || {
        dct.forward_into(&logmel, &mut cep);
        std::hint::black_box(&cep);
    });
    out.push(KernelTiming { name: "dct 26->13", scalar_us, vector_us });

    out
}

/// Benchmarks the two transcription paths, the white-box gradient step
/// and the kernel plane on the DS0 recogniser, then writes [`ARTIFACT`].
pub fn run_dataplane_bench(ctx: &ExperimentContext) {
    println!("== data plane: scratch-plan throughput, grad-step latency, kernel plane ==");
    let asr = AsrProfile::Ds0.trained_in(Some(&ctx.models_dir()));
    let waves: Vec<&Waveform> = ctx.benign.utterances().iter().map(|u| &u.wave).collect();
    let items = waves.len();

    // Per-call path: every transcription allocates its own buffers.
    let t0 = Instant::now();
    let mut per_call_out = Vec::new();
    for _ in 0..ROUNDS {
        per_call_out = waves.iter().map(|w| asr.transcribe(w)).collect::<Vec<_>>();
    }
    let per_call = t0.elapsed();

    // Batch path: one scratch plan reused across every batch, as the
    // serve workers hold it. Warm once so growth is off the clock.
    let mut scratch = AsrScratch::default();
    let _ = asr.transcribe_batch_with(&waves, &mut scratch);
    let t1 = Instant::now();
    let mut batch_out = Vec::new();
    for _ in 0..ROUNDS {
        batch_out = asr.transcribe_batch_with(&waves, &mut scratch);
    }
    let batch = t1.elapsed();
    assert_eq!(per_call_out, batch_out, "scratch path diverged from per-call path");

    // Single-stream transcription with the kernel plane forced onto the
    // scalar oracles, for the end-to-end kernel speedup figure. No
    // cross-mode output assert: the modes legitimately differ in final
    // ulps (documented in mvp_dsp::kernel), which decoding absorbs.
    kernel::force_scalar(true);
    let _ = waves.iter().map(|w| asr.transcribe(w)).count();
    let t2 = Instant::now();
    for _ in 0..ROUNDS {
        for w in &waves {
            std::hint::black_box(asr.transcribe(w));
        }
    }
    let scalar_stream = t2.elapsed();
    kernel::force_scalar(false);

    // White-box gradient step: loss + input gradient for one command
    // target, the unit of work Algorithm 1 repeats thousands of times.
    let target = TrainedAsr::target_indices("open the door");
    let host = waves[0];
    let _ = asr.attack_loss_and_input_grad(host, &target, 0.1);
    let t3 = Instant::now();
    for _ in 0..GRAD_STEPS {
        let _ = asr.attack_loss_and_input_grad(host, &target, 0.1);
    }
    let grad_step_ms = t3.elapsed().as_secs_f64() * 1e3 / GRAD_STEPS as f64;

    let n = (items * ROUNDS) as f64;
    let per_call_rps = n / per_call.as_secs_f64();
    let batch_rps = n / batch.as_secs_f64();
    let scalar_rps = n / scalar_stream.as_secs_f64();
    let kernel_speedup = per_call_rps / scalar_rps;
    let mut table = Table::new(["path", "items", "wall ms", "items/s"]);
    table.row([
        "transcribe (scalar oracles)".to_string(),
        format!("{}", items * ROUNDS),
        format!("{:.1}", scalar_stream.as_secs_f64() * 1e3),
        format!("{scalar_rps:.1}"),
    ]);
    table.row([
        "transcribe (alloc per call)".to_string(),
        format!("{}", items * ROUNDS),
        format!("{:.1}", per_call.as_secs_f64() * 1e3),
        format!("{per_call_rps:.1}"),
    ]);
    table.row([
        "transcribe_batch_with (scratch)".to_string(),
        format!("{}", items * ROUNDS),
        format!("{:.1}", batch.as_secs_f64() * 1e3),
        format!("{batch_rps:.1}"),
    ]);
    println!("{table}");
    println!(
        "scratch speedup: {:.2}x; kernel speedup (single-stream): {kernel_speedup:.2}x; \
         white-box grad step: {grad_step_ms:.1} ms (mean of {GRAD_STEPS})",
        batch_rps / per_call_rps
    );

    let kernels = kernel_breakdown();
    let mut ktable = Table::new(["kernel", "scalar us", "vectorized us", "speedup"]);
    for k in &kernels {
        ktable.row([
            k.name.to_string(),
            format!("{:.2}", k.scalar_us),
            format!("{:.2}", k.vector_us),
            format!("{:.2}x", k.speedup()),
        ]);
    }
    println!("{ktable}");

    let kernel_json: Vec<String> = kernels
        .iter()
        .map(|k| {
            format!(
                "    {{\"name\": \"{}\", \"scalar_us\": {:.3}, \"vectorized_us\": {:.3}, \
                 \"speedup\": {:.4}}}",
                k.name,
                k.scalar_us,
                k.vector_us,
                k.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"items\": {items},\n  \"rounds\": {ROUNDS},\n  \
         \"per_call_rps\": {per_call_rps:.3},\n  \"batch_scratch_rps\": {batch_rps:.3},\n  \
         \"scalar_oracle_rps\": {scalar_rps:.3},\n  \
         \"scratch_speedup\": {:.4},\n  \"kernel_speedup\": {kernel_speedup:.4},\n  \
         \"grad_step_ms\": {grad_step_ms:.3},\n  \"grad_steps\": {GRAD_STEPS},\n  \
         \"kernels\": [\n{}\n  ]\n}}\n",
        batch_rps / per_call_rps,
        kernel_json.join(",\n"),
    );
    match std::fs::write(ARTIFACT, &json) {
        Ok(()) => println!("wrote {ARTIFACT}\n"),
        Err(e) => println!("could not write {ARTIFACT}: {e}\n"),
    }
}
