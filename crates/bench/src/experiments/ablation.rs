//! Ablations of the design choices DESIGN.md §6 calls out: the phonetic
//! encoder inside the similarity method, and the decoder's min-run
//! denoising filter.

use mvp_asr::{Asr, AsrProfile};
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears::SimilarityMethod;
use mvp_ml::{ClassifierKind, Dataset};
use mvp_phonetics::{Encoder, PhoneticEncoder};
use mvp_textsim::{wer, Similarity};

use crate::context::{score_mat, ExperimentContext};
use crate::table::Table;

use super::THREE_AUX;

/// Detection accuracy per phonetic encoder (JaroWinkler base, 80/20 SVM on
/// the three-auxiliary system).
pub fn encoder_ablation(ctx: &ExperimentContext) {
    println!("== Ablation: phonetic encoder inside the similarity method ==");
    let mut t = Table::new(["Encoder", "Accuracy", "FPR", "FNR"]);
    let mut methods: Vec<(String, SimilarityMethod)> = vec![(
        "none (raw text)".to_string(),
        SimilarityMethod { base: Similarity::JaroWinkler, phonetic: None },
    )];
    for enc in Encoder::ALL {
        methods.push((
            enc.name().to_string(),
            SimilarityMethod { base: Similarity::JaroWinkler, phonetic: Some(enc) },
        ));
    }
    for (name, method) in methods {
        let data = Dataset::from_classes(
            score_mat(ctx.benign_scores(&THREE_AUX, method)),
            score_mat(ctx.ae_scores(&THREE_AUX, method, None)),
        );
        let (train, test) = data.split(0.8, 13);
        let mut model = ClassifierKind::Svm.build();
        model.fit(&train);
        let m = mvp_ml::BinaryMetrics::from_predictions(
            &model.predict_batch(test.features()),
            test.labels(),
        );
        t.row([
            name,
            format!("{:.2}%", m.accuracy() * 100.0),
            format!("{:.2}%", m.fpr() * 100.0),
            format!("{:.2}%", m.fnr() * 100.0),
        ]);
    }
    println!("{t}");
}

/// The training-free majority-disagreement baseline vs the learned SVM on
/// the three-auxiliary system.
pub fn baseline_comparison(ctx: &ExperimentContext) {
    println!("== Ablation: training-free majority baseline vs learned classifier ==");
    use mvp_ears::MajorityBaseline;
    let method = SimilarityMethod::default();
    let benign = ctx.benign_scores(&THREE_AUX, method);
    let aes = ctx.ae_scores(&THREE_AUX, method, None);
    let mut t = Table::new(["Detector", "Accuracy", "FPR", "FNR"]);
    for cutoff in [0.7, 0.8, 0.9] {
        let b = MajorityBaseline::new(cutoff);
        let preds: Vec<usize> =
            benign.iter().chain(&aes).map(|v| usize::from(b.is_adversarial_scores(v))).collect();
        let truth: Vec<usize> =
            std::iter::repeat_n(0, benign.len()).chain(std::iter::repeat_n(1, aes.len())).collect();
        let m = mvp_ml::BinaryMetrics::from_predictions(&preds, &truth);
        t.row([
            format!("majority baseline (cutoff {cutoff})"),
            format!("{:.2}%", m.accuracy() * 100.0),
            format!("{:.2}%", m.fpr() * 100.0),
            format!("{:.2}%", m.fnr() * 100.0),
        ]);
    }
    // The learned SVM on the same features (80/20 split for a fair test set).
    let data = Dataset::from_classes(score_mat(benign), score_mat(aes));
    let (train, test) = data.split(0.8, 13);
    let mut model = ClassifierKind::Svm.build();
    model.fit(&train);
    let m = mvp_ml::BinaryMetrics::from_predictions(
        &model.predict_batch(test.features()),
        test.labels(),
    );
    t.row([
        "learned SVM (paper design)".to_string(),
        format!("{:.2}%", m.accuracy() * 100.0),
        format!("{:.2}%", m.fpr() * 100.0),
        format!("{:.2}%", m.fnr() * 100.0),
    ]);
    println!("{t}");
}

/// Benign word-error-rate of DS0-geometry recognisers as the decoder's
/// min-run filter varies (0 disables transition denoising).
pub fn min_run_ablation(ctx: &ExperimentContext) {
    println!("== Ablation: decoder min-run transition filter vs benign WER ==");
    let corpus = CorpusBuilder::new(CorpusConfig {
        size: ctx.scale.commonvoice.max(8),
        seed: 606,
        noise_prob: 0.6,
        ..CorpusConfig::default()
    })
    .build();
    let mut t = Table::new(["min_run", "mean benign WER"]);
    for min_run in [1usize, 2, 3, 4] {
        // Rebuild a DS0-shaped recogniser with the altered decoder setting.
        let mut spec = AsrProfile::Ds0.spec();
        spec.decoder.min_run = min_run;
        let asr = retrain_with_spec(&spec);
        let mean: f64 =
            corpus.utterances().iter().map(|u| wer(&u.text, &asr.transcribe(&u.wave))).sum::<f64>()
                / corpus.len() as f64;
        t.row([min_run.to_string(), format!("{:.1}%", mean * 100.0)]);
    }
    println!("{t}");
    println!("(the default min_run = 2 suppresses one-frame transition noise)\n");
}

/// Trains a recogniser from an explicit spec (the profile cache only holds
/// the canonical specs).
fn retrain_with_spec(spec: &mvp_asr::profile::ProfileSpec) -> mvp_asr::TrainedAsr {
    use mvp_asr::{AcousticModel, Decoder, FeatureFrontEnd, TrainedAsr};
    use mvp_corpus::{command_phrases, SentenceGenerator};
    use mvp_phonetics::{Lexicon, Phoneme};

    let frontend = FeatureFrontEnd::new(spec.frontend.clone());
    let corpus = CorpusBuilder::new(CorpusConfig {
        size: spec.corpus_size,
        seed: spec.corpus_seed,
        sample_rate: 16_000,
        noise_prob: spec.noise_prob,
        noise_snr_db: (12.0, 28.0),
    })
    .build();
    let mut features = mvp_ml::Mat::zeros(0, frontend.dim());
    let mut labels = Vec::new();
    for utt in corpus.utterances() {
        let feats = frontend.features(&utt.wave);
        for row in 0..feats.n_frames() {
            let center = frontend.frame_center_sample(row);
            let label = utt
                .alignment
                .iter()
                .find(|a| center >= a.start && center < a.end)
                .map_or(Phoneme::SIL, |a| a.phoneme);
            features.push_row(feats.row(row));
            labels.push(label.index());
        }
    }
    let am = AcousticModel::train(&features, &labels, &spec.train);
    let mut lm_sentences = SentenceGenerator::new(spec.lm_seed).take_sentences(spec.lm_size);
    for cmd in command_phrases() {
        for _ in 0..3 {
            lm_sentences.push(cmd.to_string());
        }
    }
    let lm = mvp_asr::BigramLm::train(lm_sentences.iter().map(String::as_str), 0.05);
    let decoder = Decoder::new(&Lexicon::builtin(), lm, spec.decoder.clone());
    TrainedAsr::new(format!("{}*", spec.name), frontend, am, decoder)
}
