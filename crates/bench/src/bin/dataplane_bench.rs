//! Runs only the data-plane benchmark (scale via `MVP_EARS_SCALE`).

use mvp_bench::{experiments, ExperimentContext, Scale};

fn main() {
    let ctx = ExperimentContext::load_or_generate(Scale::from_env());
    experiments::dataplane::run_dataplane_bench(&ctx);
}
