//! Extension experiment: real multiple-ASR-effective AEs via the joint
//! ensemble attack, validating the §V-H proactive defense on actual audio.
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let ctx = ExperimentContext::load_or_generate(Scale::from_env());
    mvp_bench::experiments::adaptive::adaptive(&ctx);
}
