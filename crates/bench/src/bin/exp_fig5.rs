//! Regenerates the paper's Figure 5 (ROC curves).
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let ctx = ExperimentContext::load_or_generate(Scale::from_env());
    mvp_bench::experiments::unseen::fig5(&ctx);
}
