//! Standalone driver for the artifact-plane benchmark (also runs at the
//! end of `run_all`): cold train vs warm load per ASR profile, written to
//! `BENCH_artifact.json`.

use mvp_bench::experiments::artifact::run_artifact_bench;
use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_env();
    let ctx = ExperimentContext::load_or_generate(scale);
    run_artifact_bench(&ctx);
}
