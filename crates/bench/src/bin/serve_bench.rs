//! Regenerates `BENCH_serve.json`: the serving-engine load benchmark.
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{experiments, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("serving benchmark at scale {:?}\n", scale.name);
    let ctx = ExperimentContext::load_or_generate(scale);
    experiments::serve::run_serve_bench(&ctx);
}
