//! Runs the complete evaluation: every table and figure in order.
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::experiments;
use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("MVP-EARS evaluation at scale {:?}\n", scale.name);
    let ctx = ExperimentContext::load_or_generate(scale);
    experiments::data::table1(&ctx);
    experiments::data::table2(&ctx);
    experiments::data::fig4(&ctx);
    experiments::similarity::table3(&ctx);
    experiments::classifiers::table4(&ctx);
    experiments::classifiers::table5(&ctx);
    experiments::classifiers::table6(&ctx);
    experiments::unseen::table7(&ctx);
    experiments::unseen::fig5(&ctx);
    experiments::unseen::table8(&ctx);
    experiments::mae::table9(&ctx);
    experiments::mae::table10(&ctx);
    experiments::mae::table11(&ctx);
    experiments::mae::table12(&ctx);
    experiments::perf::overhead(&ctx);
    experiments::unseen::nontargeted(&ctx);
    experiments::transfer::transfer(&ctx);
    experiments::adaptive::adaptive(&ctx);
    experiments::ablation::encoder_ablation(&ctx);
    experiments::ablation::baseline_comparison(&ctx);
    experiments::ablation::min_run_ablation(&ctx);
    experiments::modality::run_modality_bench(&ctx);
    experiments::serve::run_serve_bench(&ctx);
    experiments::obs::run_obs_bench(&ctx);
    experiments::dataplane::run_dataplane_bench(&ctx);
    experiments::artifact::run_artifact_bench(&ctx);
    experiments::quant::run_quant_bench(&ctx);
}
