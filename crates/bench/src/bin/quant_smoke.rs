//! CI smoke test for the quantization plane. Exits non-zero on any
//! failure, so `scripts/ci.sh` can gate on it. Three gates:
//!
//! 1. **Throughput**: int8 acoustic-model inference on the widest
//!    profile (GCS) must beat the f64 model by >= 1.3x. Steady-state is
//!    ~1.8x on AVX-512 hosts; the slack absorbs scheduler noise and
//!    narrower SIMD. The gate sits at the acoustic-model level on
//!    purpose — the MFCC frontend dominates end-to-end transcription,
//!    so an end-to-end gate would measure the frontend, not the
//!    quantized path (see DESIGN.md, "Quantization plane").
//! 2. **Agreement**: the int8 variant must still be the *same version*
//!    on clean speech — mean transcript similarity with its f64 parent
//!    over the tiny benign corpus >= 0.6 (the recognizer property
//!    test's bound).
//! 3. **Artifact**: the quantized pipeline must round-trip through its
//!    `.mvpa` artifact bit-exactly, and a corrupted artifact must be
//!    refused with a typed error, never silently re-quantized here.

use std::process::ExitCode;
use std::time::Instant;

use mvp_artifact::Persist;
use mvp_asr::{AmScratch, Asr, AsrProfile, QuantizedAsr};
use mvp_bench::{ExperimentContext, Scale};
use mvp_dsp::mfcc::FeatureMatrix;
use mvp_ears::SimilarityMethod;

/// Minimum int8-over-f64 acoustic-model speedup on GCS.
const MIN_AM_SPEEDUP: f64 = 1.3;

/// Minimum mean benign transcript similarity between precisions.
const MIN_AGREEMENT_SIM: f64 = 0.6;

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("quant smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("quant smoke: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let ctx = ExperimentContext::load_or_generate(Scale::TINY);
    throughput_gate(&ctx)?;
    agreement_gate(&ctx)?;
    artifact_gate(&ctx)
}

/// Best-of-5 mean wall time per round, one untimed warm-up round.
fn time_us(rounds: usize, mut work: impl FnMut()) -> f64 {
    work();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..rounds {
            work();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e6 / rounds as f64);
    }
    best
}

/// Gate 1: int8 GCS acoustic-model inference >= 1.3x its f64 parent.
fn throughput_gate(ctx: &ExperimentContext) -> Result<(), String> {
    let models = ctx.models_dir();
    let asr = AsrProfile::Gcs.trained_in(Some(&models));
    let quant = AsrProfile::Gcs.trained_quantized_in(Some(&models));
    let feats: Vec<FeatureMatrix> =
        ctx.benign.utterances().iter().map(|u| asr.frontend().features(&u.wave)).collect();
    let am = asr.acoustic_model();
    let qam = quant.quantized_model().ok_or("GCS quantized variant has no int8 model")?;
    let mut scratch = AmScratch::default();
    let mut out = FeatureMatrix::default();
    let f64_us = time_us(20, || {
        for f in &feats {
            am.logit_matrix_into(f, &mut scratch, &mut out);
        }
        std::hint::black_box(&out);
    });
    let i8_us = time_us(20, || {
        for f in &feats {
            qam.logit_matrix_into(f, &mut scratch, &mut out);
        }
        std::hint::black_box(&out);
    });
    let speedup = f64_us / i8_us;
    println!(
        "throughput gate: GCS acoustic model f64 {f64_us:.0} us vs int8 {i8_us:.0} us \
         ({speedup:.2}x)"
    );
    if speedup < MIN_AM_SPEEDUP {
        return Err(format!(
            "int8 GCS acoustic model only {speedup:.2}x over f64 (gate {MIN_AM_SPEEDUP}x)"
        ));
    }
    Ok(())
}

/// Gate 2: the int8 variant transcribes clean speech like its parent.
fn agreement_gate(ctx: &ExperimentContext) -> Result<(), String> {
    let models = ctx.models_dir();
    let asr = AsrProfile::Ds0.trained_in(Some(&models));
    let quant = AsrProfile::Ds0.trained_quantized_in(Some(&models));
    let method = SimilarityMethod::default();
    let n = ctx.benign.utterances().len();
    let mean_sim = ctx
        .benign
        .utterances()
        .iter()
        .map(|u| method.score(&asr.transcribe(&u.wave), &quant.transcribe(&u.wave)))
        .sum::<f64>()
        / n.max(1) as f64;
    println!("agreement gate: DS0 vs DS0-I8 mean similarity {mean_sim:.3} over {n} utterances");
    if mean_sim < MIN_AGREEMENT_SIM {
        return Err(format!("benign int8/f64 similarity {mean_sim:.3} below {MIN_AGREEMENT_SIM}"));
    }
    Ok(())
}

/// Gate 3: quantized-artifact round-trip fidelity and corruption refusal.
fn artifact_gate(ctx: &ExperimentContext) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("mvp-quant-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create temp dir: {e}"))?;
    let result = artifact_checks(ctx, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn artifact_checks(ctx: &ExperimentContext, dir: &std::path::Path) -> Result<(), String> {
    // Quantize the cheapest profile fresh (bypassing the process cache so
    // the artifact genuinely comes from this quantization pass).
    let base = AsrProfile::Kaldi.trained_in(Some(&ctx.models_dir()));
    let calibration: Vec<&mvp_audio::Waveform> =
        ctx.benign.utterances().iter().take(4).map(|u| &u.wave).collect();
    let quantized = base.quantize(&calibration);
    let path = dir.join(AsrProfile::Kaldi.quantized_artifact_file_name());
    QuantizedAsr::new(quantized.clone())
        .save_file(&path)
        .map_err(|e| format!("persist quantized: {e}"))?;

    // Round trip: the loaded variant must transcribe bit-exactly.
    let loaded =
        QuantizedAsr::load_file(&path).map_err(|e| format!("reload quantized: {e}"))?.into_asr();
    for u in ctx.benign.utterances().iter().take(4) {
        if loaded.transcribe(&u.wave) != quantized.transcribe(&u.wave) {
            return Err("reloaded int8 pipeline diverged from the quantized one".into());
        }
    }
    println!("artifact gate: int8 round trip reproduces the quantized pipeline");

    // Corruption: flip one byte mid-file; the load must fail typed.
    let mut bytes = std::fs::read(&path).map_err(|e| format!("read artifact: {e}"))?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).map_err(|e| format!("write corrupt copy: {e}"))?;
    match QuantizedAsr::load_file(&path) {
        Ok(_) => Err("corrupted int8 artifact was accepted".into()),
        Err(e) if e.is_not_found() => Err(format!("corruption misreported as a cache miss: {e}")),
        Err(e) => {
            println!("artifact gate: corrupted int8 artifact refused as expected: {e}");
            Ok(())
        }
    }
}
