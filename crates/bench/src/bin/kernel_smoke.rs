//! CI smoke test for the kernel plane. Exits non-zero on any failure,
//! so `scripts/ci.sh` can gate on it. Two gates:
//!
//! 1. **Parity**: every tuned kernel agrees with its scalar oracle —
//!    bit-exactly where the kernel preserves the oracle's operation
//!    order (mel, DCT, axpy), within documented reassociation slack for
//!    the 4-lane reductions (dot/GEMM), and within O(n·ε) for the
//!    real-input FFT against the full complex transform.
//! 2. **Timing**: end-to-end tiny-scale transcription with the tuned
//!    kernels must not be slower than the scalar-oracle path (10%
//!    tolerance absorbs scheduler noise) — a vectorized kernel that
//!    loses to its own fallback is a regression even when it is correct.
//!
//! The process is single-threaded apart from `par_rows` workers, so the
//! global `force_scalar` switch is safe here (it is not in `cargo test`,
//! whose harness runs tests concurrently).

use std::process::ExitCode;
use std::time::Instant;

use mvp_asr::{Asr, AsrProfile};
use mvp_bench::{ExperimentContext, Scale};
use mvp_dsp::kernel::{self, DctPlan, RfftPlan, RfftScratch};
use mvp_dsp::mel::MelFilterbank;
use mvp_dsp::{dct, fft, Complex};

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("kernel smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("kernel smoke: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    parity_gate()?;
    timing_gate()
}

/// Deterministic xorshift fill, seeded per call site.
fn lcg_fill(buf: &mut [f64], mut seed: u64) {
    for v in buf.iter_mut() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        *v = (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-300)
}

/// Gate 1: tuned kernels vs scalar oracles across degenerate, odd and
/// hot-path shapes.
fn parity_gate() -> Result<(), String> {
    // dot: 4-lane reduction vs in-order sum, reassociation slack only.
    for (i, &n) in [0usize, 1, 3, 4, 7, 8, 17, 64, 403].iter().enumerate() {
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        lcg_fill(&mut a, 0xA0 + i as u64);
        lcg_fill(&mut b, 0xB0 + i as u64);
        let (fast, oracle) = (kernel::dot(&a, &b), kernel::scalar::dot(&a, &b));
        if rel_err(fast, oracle) > 1e-12 {
            return Err(format!("dot parity at n={n}: {fast} vs {oracle}"));
        }
    }

    // gemm == gemv == dot, bitwise: the tiling must never split the
    // reduction axis (the per-call/batch equality in serve rests on it).
    let (m, n, k) = (5usize, 7usize, 403usize);
    let mut a = vec![0.0; m * k];
    let mut b = vec![0.0; n * k];
    lcg_fill(&mut a, 0xC0);
    lcg_fill(&mut b, 0xC1);
    let mut out = vec![0.0; m * n];
    kernel::gemm_nt(&a, m, &b, n, k, &mut out);
    for i in 0..m {
        let mut row = vec![0.0; n];
        kernel::gemv(&b, k, &a[i * k..(i + 1) * k], &mut row);
        for j in 0..n {
            let direct = kernel::dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
            if out[i * n + j] != row[j] || row[j] != direct {
                return Err(format!("gemm/gemv/dot bitwise parity broke at ({i}, {j})"));
            }
        }
    }

    // rfft: half-size packed transform vs the full complex FFT.
    for n in [2usize, 8, 64, 512] {
        let plan = RfftPlan::new(n);
        let mut scratch = RfftScratch::default();
        let mut signal = vec![0.0; n];
        lcg_fill(&mut signal, 0xD0 + n as u64);
        let mut spec = vec![Complex::default(); n / 2 + 1];
        plan.forward(&signal, &mut scratch, &mut spec);
        let mut full: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft::fft(&mut full);
        for (i, z) in spec.iter().enumerate() {
            let err = (z.re - full[i].re).abs().max((z.im - full[i].im).abs());
            if err > 1e-9 {
                return Err(format!("rfft parity at n={n} bin {i}: err {err:e}"));
            }
        }
        // Round trip through the inverse.
        let mut back = vec![0.0; n];
        plan.inverse(&spec, &mut scratch, &mut back);
        for (i, (&x, &y)) in signal.iter().zip(&back).enumerate() {
            if (x - y).abs() > 1e-10 {
                return Err(format!("irfft round-trip at n={n} sample {i}"));
            }
        }
    }

    // mel: fused in-range apply vs the dense oracle, bit-exact.
    let bank = MelFilterbank::new(26, 512, 16_000.0, 0.0, 8_000.0);
    let mut power = vec![0.0; bank.n_bins()];
    lcg_fill(&mut power, 0xE0);
    for p in &mut power {
        *p = p.abs();
    }
    let mut fused = vec![0.0; bank.n_filters()];
    let mut dense = vec![0.0; bank.n_filters()];
    bank.apply_into(&power, &mut fused);
    bank.apply_dense_into(&power, &mut dense);
    if fused != dense {
        return Err("mel fused apply diverged from dense oracle".into());
    }

    // dct: plan with cached cosines vs the recomputing oracle, bit-exact.
    let plan = DctPlan::new(26, 13);
    let mut logmel = vec![0.0; 26];
    lcg_fill(&mut logmel, 0xF0);
    let mut cep = vec![0.0; 13];
    let mut oracle = vec![0.0; 13];
    plan.forward_into(&logmel, &mut cep);
    dct::dct2_into(&logmel, &mut oracle);
    if cep != oracle {
        return Err("dct plan diverged from oracle".into());
    }

    println!("parity gate: dot/gemm/rfft/mel/dct agree with scalar oracles");
    Ok(())
}

/// Gate 2: the tuned kernels must not lose to their own scalar fallback
/// on end-to-end tiny-scale transcription.
fn timing_gate() -> Result<(), String> {
    let ctx = ExperimentContext::load_or_generate(Scale::TINY);
    let asr = AsrProfile::Ds0.trained_in(Some(&ctx.models_dir()));
    let waves: Vec<&mvp_audio::Waveform> =
        ctx.benign.utterances().iter().map(|u| &u.wave).collect();

    let time_stream = |rounds: usize| {
        let t = Instant::now();
        for _ in 0..rounds {
            for w in &waves {
                std::hint::black_box(asr.transcribe(w));
            }
        }
        t.elapsed().as_secs_f64()
    };

    // Warm both modes once (code, caches, allocator), then measure.
    time_stream(1);
    kernel::force_scalar(true);
    time_stream(1);
    let scalar = time_stream(2);
    kernel::force_scalar(false);
    let vectorized = time_stream(2);

    println!(
        "timing gate: vectorized {:.1} ms vs scalar {:.1} ms ({:.2}x)",
        vectorized * 1e3,
        scalar * 1e3,
        scalar / vectorized
    );
    if vectorized > scalar * 1.10 {
        return Err(format!(
            "vectorized transcription ({:.1} ms) slower than scalar oracles ({:.1} ms)",
            vectorized * 1e3,
            scalar * 1e3
        ));
    }
    Ok(())
}
