//! Regenerates `BENCH_obs.json`: the observability-plane overhead
//! benchmark (obs off vs span tracing vs verdict audit log).
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{experiments, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("observability benchmark at scale {:?}\n", scale.name);
    let ctx = ExperimentContext::load_or_generate(scale);
    experiments::obs::run_obs_bench(&ctx);
}
