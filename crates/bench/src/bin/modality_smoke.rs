//! CI smoke test for the multi-modal detection plane. Exits non-zero on
//! any failure, so `scripts/ci.sh` can gate on it. Two gates:
//!
//! 1. **Fusion lifts (or at least matches) the baseline**: fit the
//!    fused similarity + modality classifier at tiny scale and require
//!    fused AUC ≥ similarity-only AUC on the cached corpus.
//! 2. **FusedClassifier persistence**: a byte round-trip reproduces
//!    identical fused verdicts, and a corrupted artifact is refused
//!    with a typed error, never silently accepted.
//!
//! The bench artifact is written into a scratch directory so a CI run
//! never clobbers a quick- or full-scale `BENCH_modality.json` sitting
//! in the repository root.

use std::process::ExitCode;

use mvp_artifact::Persist;
use mvp_asr::AsrProfile;
use mvp_bench::{experiments, ExperimentContext, Scale};
use mvp_ears::{DetectionSystem, FusedClassifier};
use mvp_ml::{ClassifierKind, Mat};
use mvp_modality::ModalityKind;

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("modality smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("modality smoke: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let scratch = std::env::temp_dir().join(format!("mvp-modality-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| format!("create scratch dir: {e}"))?;
    std::env::set_current_dir(&scratch).map_err(|e| format!("enter scratch dir: {e}"))?;
    let result = fusion_gate().and_then(|()| persist_gate());
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

/// Gate 1: the fused classifier must not lose ground to the
/// similarity-only baseline on the cached tiny corpus.
fn fusion_gate() -> Result<(), String> {
    let ctx = ExperimentContext::load_or_generate(Scale::TINY);
    let (fused_auc, similarity_auc) = experiments::modality::run_modality_bench(&ctx);
    if fused_auc + 1e-9 < similarity_auc {
        return Err(format!(
            "fused AUC {fused_auc:.4} fell below similarity-only {similarity_auc:.4}"
        ));
    }
    println!("fusion gate: fused AUC {fused_auc:.4} >= similarity-only {similarity_auc:.4}");
    Ok(())
}

/// Gate 2: `FusedClassifier` byte round-trip and corruption refusal.
fn persist_gate() -> Result<(), String> {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .modality_kinds(&ModalityKind::ALL)
        .build();
    let dim = system.fusion_layout().expect("modalities registered").raw_dim();
    let rows = |base: f64| {
        Mat::from_rows((0..24).map(|i| vec![base + (i % 6) as f64 * 0.01; dim]).collect(), dim)
    };
    system.train_fused_on_mats(rows(0.85), rows(0.15), ClassifierKind::Svm);
    let fused = system.fused_classifier().expect("just trained");

    let mut bytes = Vec::new();
    fused.write_to(&mut bytes).map_err(|e| format!("encode: {e}"))?;
    let restored = FusedClassifier::read_from(&bytes[..]).map_err(|e| format!("decode: {e}"))?;
    for base in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let row = vec![base; dim];
        if restored.is_adversarial(&row) != fused.is_adversarial(&row) {
            return Err(format!("round-tripped verdict diverged at base {base}"));
        }
    }
    println!("persist gate: round-trip reproduces fused verdicts");

    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    match FusedClassifier::read_from(&bytes[..]) {
        Ok(_) => Err("corrupted fused classifier was accepted".into()),
        Err(e) => {
            println!("persist gate: corrupted artifact refused as expected: {e}");
            Ok(())
        }
    }
}
