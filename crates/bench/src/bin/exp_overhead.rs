//! Regenerates the paper's Section V-I overhead measurement.
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let ctx = ExperimentContext::load_or_generate(Scale::from_env());
    mvp_bench::experiments::perf::overhead(&ctx);
}
