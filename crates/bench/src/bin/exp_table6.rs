//! Regenerates the paper's Table VI (FPR/FNR vs auxiliary count).
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let ctx = ExperimentContext::load_or_generate(Scale::from_env());
    mvp_bench::experiments::classifiers::table6(&ctx);
}
