//! Regenerates `BENCH_modality.json`: per-modality and fused detector
//! AUC + extraction latency against the similarity-only baseline.
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{experiments, ExperimentContext, Scale};

fn main() {
    let scale = Scale::from_env();
    let ctx = ExperimentContext::load_or_generate(scale);
    experiments::modality::run_modality_bench(&ctx);
}
