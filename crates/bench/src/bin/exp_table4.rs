//! Regenerates the paper's Table IV (single-auxiliary systems).
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let ctx = ExperimentContext::load_or_generate(Scale::from_env());
    mvp_bench::experiments::classifiers::table4(&ctx);
}
