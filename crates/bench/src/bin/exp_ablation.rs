//! Ablations of the workspace's own design choices (DESIGN.md §6):
//! phonetic-encoder selection and the decoder's min-run filter.
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let ctx = ExperimentContext::load_or_generate(Scale::from_env());
    mvp_bench::experiments::ablation::encoder_ablation(&ctx);
    mvp_bench::experiments::ablation::baseline_comparison(&ctx);
    mvp_bench::experiments::ablation::min_run_ablation(&ctx);
}
