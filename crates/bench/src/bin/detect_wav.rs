//! Command-line detector: feed a 16 kHz mono PCM-16 WAV file to the
//! MVP-EARS system and print the verdict.
//!
//! ```text
//! detect_wav <file.wav> [more.wav ...]
//! ```
//!
//! The threshold detectors are fitted on a built-in benign corpus at a 5 %
//! FPR budget (the paper's §V-G configuration), so no AE training data is
//! needed; an audio is flagged when *any* auxiliary similarity falls below
//! its threshold.

use std::process::ExitCode;

use mvp_asr::AsrProfile;
use mvp_audio::wav::read_wav;
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears::{DetectionSystem, ThresholdDetector};

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: detect_wav <file.wav> [more.wav ...]");
        return ExitCode::from(2);
    }

    eprintln!("training ASR profiles and fitting thresholds (one-time)...");
    let system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .auxiliary(AsrProfile::At)
        .build();
    let benign =
        CorpusBuilder::new(CorpusConfig { size: 40, seed: 42, ..CorpusConfig::default() }).build();
    let benign_scores: Vec<Vec<f64>> =
        benign.utterances().iter().map(|u| system.score_vector(&u.wave)).collect();
    let detectors: Vec<ThresholdDetector> = (0..system.n_auxiliaries())
        .map(|i| {
            let col: Vec<f64> = benign_scores.iter().map(|v| v[i]).collect();
            ThresholdDetector::fit_benign(&col, 0.05)
        })
        .collect();

    let mut any_adversarial = false;
    for path in &files {
        let wave = match std::fs::File::open(path)
            .map_err(|e| e.to_string())
            .and_then(|f| read_wav(std::io::BufReader::new(f)).map_err(|e| e.to_string()))
        {
            Ok(w) => w,
            Err(e) => {
                eprintln!("{path}: cannot read ({e})");
                any_adversarial = true;
                continue;
            }
        };
        let (target, aux) = system.transcripts(&wave);
        let scores = system.scores_from_transcripts(&target, &aux);
        let flagged = scores.iter().zip(&detectors).any(|(&s, d)| d.is_adversarial(s));
        any_adversarial |= flagged;
        println!("{path}: {}", if flagged { "ADVERSARIAL" } else { "benign" });
        println!(
            "  {} ({:.1}s) heard by {}: {:?}",
            path,
            wave.duration_secs(),
            AsrProfile::Ds0,
            target
        );
        for ((name, text), (&s, d)) in
            ["DS1", "GCS", "AT"].iter().zip(&aux).zip(scores.iter().zip(&detectors))
        {
            println!("  {name}: {text:?} (similarity {s:.3}, threshold {:.3})", d.threshold());
        }
    }
    if any_adversarial {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
