//! Command-line detector: feed a 16 kHz mono PCM-16 WAV file to the
//! MVP-EARS system and print the verdict.
//!
//! ```text
//! detect_wav [--model-dir <dir>] [--modalities <list>] [--precision] [--trace] <file.wav> [more.wav ...]
//! ```
//!
//! The threshold detectors are fitted on a built-in benign corpus at a 5 %
//! FPR budget (the paper's §V-G configuration), so no AE training data is
//! needed; an audio is flagged when *any* auxiliary similarity falls below
//! its threshold.
//!
//! With `--model-dir`, trained ASR models and the fitted threshold bank
//! are loaded from (and on first run saved to) versioned artifacts in
//! `<dir>`, so later invocations skip training entirely. A corrupt or
//! incompatible artifact is an error, never a silent retrain.
//!
//! With `--modalities`, a comma-separated mix of detection modalities is
//! evaluated per file and their stability features printed as evidence
//! alongside the verdict. `similarity` (the default) is the plain
//! cross-ASR ensemble; the other names are the `mvp-modality` kinds
//! (`transform`, `distribution`, `instability`). The similarity
//! thresholds alone decide the verdict — modality evidence never changes
//! the exit code, so the exit-code semantics below are unchanged — and an
//! unknown modality name is a usage error (exit 2).
//!
//! With `--precision`, the target's int8 quantized variant (DS0-I8) joins
//! the ensemble as a fourth auxiliary — the PVP precision-diversity axis:
//! its transcript diverges from the f64 target's exactly when small
//! adversarial perturbations stop surviving numeric coarsening. The
//! threshold bank then carries four detectors; a `--model-dir` bank fitted
//! without the flag is refused with a dimension error rather than reused.
//!
//! With `--trace`, the observability plane's span tracing is enabled and
//! an indented span tree — per-stage micro-timings of the whole pipeline —
//! is printed after each file's verdict.
//!
//! Exit codes — the verdict is the exit status, and I/O trouble is never
//! conflated with an adversarial verdict:
//!
//! - `0` — every input was read and judged **benign**;
//! - `1` — at least one input was judged **adversarial**;
//! - `2` — usage error, unreadable input, or unusable model directory
//!   (no complete verdict was possible).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mvp_artifact::Persist;
use mvp_asr::{Asr, AsrProfile};
use mvp_audio::wav::read_wav;
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears::{DetectionSystem, ThresholdBank, ThresholdDetector};
use mvp_modality::ModalityKind;

const AUXILIARIES: [AsrProfile; 3] = [AsrProfile::Ds1, AsrProfile::Gcs, AsrProfile::At];
const THRESHOLD_FILE: &str = "thresholds.mvpa";

/// Parses the `--modalities` list: `similarity` selects the baseline
/// ensemble (and may appear alone or alongside modality kinds); every
/// other name must be a known [`ModalityKind`]. Unknown names and
/// duplicates are usage errors.
fn parse_modalities(list: &str) -> Result<Vec<ModalityKind>, String> {
    let mut kinds = Vec::new();
    for name in list.split(',').map(str::trim) {
        if name == "similarity" {
            continue; // always evaluated; listing it is allowed, not required
        }
        let kind = ModalityKind::parse(name).ok_or_else(|| {
            format!(
                "unknown modality {name:?}; valid names: similarity, {}",
                ModalityKind::ALL.map(|k| k.name()).join(", ")
            )
        })?;
        if kinds.contains(&kind) {
            return Err(format!("modality {name:?} listed twice"));
        }
        kinds.push(kind);
    }
    Ok(kinds)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::from(1),
        Ok(false) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("detect_wav: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut model_dir: Option<PathBuf> = None;
    let mut trace = false;
    let mut precision = false;
    let mut modalities: Vec<ModalityKind> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model-dir" => {
                let dir = args.next().ok_or("--model-dir needs a directory argument")?;
                model_dir = Some(PathBuf::from(dir));
            }
            "--modalities" => {
                let list = args.next().ok_or("--modalities needs a comma-separated list")?;
                modalities = parse_modalities(&list)?;
            }
            "--precision" => precision = true,
            "--trace" => trace = true,
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return Err("usage: detect_wav [--model-dir <dir>] [--modalities <list>] [--precision] \
                    [--trace] <file.wav> [more.wav ...]"
            .into());
    }

    let system = build_system(model_dir.as_deref(), &modalities, precision)?;
    let detectors = load_or_fit_thresholds(&system, model_dir.as_deref())?;

    let mut any_adversarial = false;
    for path in &files {
        let wave = std::fs::File::open(path)
            .map_err(|e| format!("{path}: cannot open ({e})"))
            .and_then(|f| {
                read_wav(std::io::BufReader::new(f))
                    .map_err(|e| format!("{path}: cannot read ({e})"))
            })?;
        if trace {
            mvp_obs::trace::enable(8192);
        }
        let (target, aux) = system.transcripts(&wave);
        let scores = system.scores_from_transcripts(&target, &aux);
        let flagged = scores.iter().zip(detectors.detectors()).any(|(&s, d)| d.is_adversarial(s));
        any_adversarial |= flagged;
        println!("{path}: {}", if flagged { "ADVERSARIAL" } else { "benign" });
        println!(
            "  {} ({:.1}s) heard by {}: {:?}",
            path,
            wave.duration_secs(),
            AsrProfile::Ds0,
            target
        );
        for ((asr, text), (&s, d)) in
            system.auxiliaries().iter().zip(&aux).zip(scores.iter().zip(detectors.detectors()))
        {
            println!(
                "  {}: {text:?} (similarity {s:.3}, threshold {:.3})",
                asr.name(),
                d.threshold()
            );
        }
        // Extra modality evidence, printed but never part of the verdict:
        // the similarity thresholds alone decide the exit code.
        for (outcome, modality) in
            system.score_modalities(&wave, &target).iter().zip(system.modalities().modalities())
        {
            let features: Vec<String> = modality
                .feature_names()
                .iter()
                .zip(&outcome.features)
                .map(|(name, value)| format!("{name}={value:.3}"))
                .collect();
            println!(
                "  modality {} [{}]: {} ({} us)",
                outcome.name,
                modality.cost().name(),
                features.join(" "),
                outcome.elapsed_us
            );
        }
        if trace {
            let events = mvp_obs::trace::drain();
            mvp_obs::trace::disable();
            print!("{}", mvp_obs::trace::render_tree(&events));
        }
    }
    Ok(any_adversarial)
}

/// Builds DS0+{DS1, GCS, AT} with the selected modality mix registered,
/// training in-process or loading/saving each model through the
/// `--model-dir` disk tier. With `precision`, the target's int8 variant
/// (DS0-I8) is appended as a fourth auxiliary, persisted in the same
/// directory tier as `asr-ds0-i8.mvpa`.
fn build_system(
    model_dir: Option<&Path>,
    modalities: &[ModalityKind],
    precision: bool,
) -> Result<DetectionSystem, String> {
    let mut builder = match model_dir {
        None => {
            eprintln!("training ASR profiles (one-time; use --model-dir to persist them)...");
            DetectionSystem::builder(AsrProfile::Ds0)
                .auxiliary(AsrProfile::Ds1)
                .auxiliary(AsrProfile::Gcs)
                .auxiliary(AsrProfile::At)
        }
        Some(dir) => {
            let load = |p: AsrProfile| {
                p.load_or_train(dir)
                    .map(std::sync::Arc::new)
                    .map_err(|e| format!("model dir {}: {p}: {e}", dir.display()))
            };
            let mut builder = DetectionSystem::builder_for(load(AsrProfile::Ds0)?);
            for aux in AUXILIARIES {
                builder = builder.auxiliary_asr(load(aux)?);
            }
            builder
        }
    };
    if precision {
        builder = builder.auxiliary_asr(AsrProfile::Ds0.trained_quantized_in(model_dir));
    }
    Ok(builder.modality_kinds(modalities).build())
}

/// Fits the per-auxiliary threshold bank on the built-in benign corpus,
/// or round-trips it through `<model_dir>/thresholds.mvpa`.
fn load_or_fit_thresholds(
    system: &DetectionSystem,
    model_dir: Option<&Path>,
) -> Result<ThresholdBank, String> {
    let path = model_dir.map(|d| d.join(THRESHOLD_FILE));
    if let Some(path) = &path {
        match ThresholdBank::load_file(path) {
            Ok(bank) => {
                if bank.detectors().len() != system.n_auxiliaries() {
                    return Err(format!(
                        "{}: bank has {} detectors for {} auxiliaries",
                        path.display(),
                        bank.detectors().len(),
                        system.n_auxiliaries()
                    ));
                }
                return Ok(bank);
            }
            Err(e) if e.is_not_found() => {}
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
    }
    eprintln!("fitting thresholds on the built-in benign corpus (5% FPR budget)...");
    let benign =
        CorpusBuilder::new(CorpusConfig { size: 40, seed: 42, ..CorpusConfig::default() }).build();
    let benign_scores: Vec<Vec<f64>> =
        benign.utterances().iter().map(|u| system.score_vector(&u.wave)).collect();
    let bank = ThresholdBank(
        (0..system.n_auxiliaries())
            .map(|i| {
                let col: Vec<f64> = benign_scores.iter().map(|v| v[i]).collect();
                ThresholdDetector::fit_benign(&col, 0.05)
            })
            .collect(),
    );
    if let Some(path) = &path {
        bank.save_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(bank)
}
