//! CI smoke test for the artifact plane: trains the cheapest ASR profile,
//! persists it, then proves the disk tier both round-trips faithfully and
//! refuses a corrupted artifact with a typed error. Exits non-zero on any
//! failure, so `scripts/ci.sh` can gate on it.

use std::process::ExitCode;

use mvp_asr::{Asr, AsrProfile};

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("artifact smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("artifact smoke: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let profile = AsrProfile::Kaldi; // cheapest training recipe
    let dir = std::env::temp_dir().join(format!("mvp-artifact-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = smoke(profile, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn smoke(profile: AsrProfile, dir: &std::path::Path) -> Result<(), String> {
    // Cold: train and persist.
    let trained = profile.load_or_train(dir).map_err(|e| format!("cold train: {e}"))?;
    let path = profile.artifact_path(dir);
    if !path.is_file() {
        return Err(format!("{} was not written", path.display()));
    }
    println!("trained {profile} and wrote {}", path.display());

    // Warm: a clean load must reproduce the pipeline.
    let loaded = profile.load(dir).map_err(|e| format!("warm load: {e}"))?;
    let wave = mvp_audio::Waveform::from_samples(vec![0.01f32; 8_000], 16_000);
    if loaded.transcribe(&wave) != trained.transcribe(&wave) {
        return Err("warm-loaded pipeline diverged from the trained one".into());
    }
    println!("warm load reproduces the trained pipeline");

    // Corrupt a copy: the load must fail cleanly with a typed error.
    let mut bytes = std::fs::read(&path).map_err(|e| format!("read artifact: {e}"))?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    let corrupt_dir = dir.join("corrupt");
    std::fs::create_dir_all(&corrupt_dir).map_err(|e| format!("create corrupt dir: {e}"))?;
    std::fs::write(profile.artifact_path(&corrupt_dir), &bytes)
        .map_err(|e| format!("write corrupt copy: {e}"))?;
    match profile.load(&corrupt_dir) {
        Ok(_) => Err("corrupted artifact was accepted".into()),
        Err(e) if e.is_not_found() => Err(format!("corruption misreported as a cache miss: {e}")),
        Err(e) => {
            println!("corrupted artifact refused as expected: {e}");
            Ok(())
        }
    }
}
