//! CI smoke test for the observability plane. Four gates, all in-process
//! so no cross-run hardware noise can flake the build:
//!
//! 1. **Zero-cost-when-off**: the measured cost of a disabled span site,
//!    multiplied by a generous per-request site count, must stay under 2 %
//!    of one measured detection; the instrumentation may not tax the
//!    serving path when tracing is off.
//! 2. **Tracing**: a traced detection must emit a well-formed span forest
//!    (unique ids, children nested inside parents) covering every pipeline
//!    stage, and the forest must render.
//! 3. **Audit**: every serve-path verdict — full, cache hit — must append
//!    one JSONL record that parses with the obs JSON parser and carries
//!    the fields needed to reconstruct the decision.
//! 4. **Metrics**: the Prometheus exposition must agree with the stats
//!    snapshot (single storage, no dual bookkeeping).
//!
//! Exits non-zero on any failure, so `scripts/ci.sh` can gate on it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mvp_asr::AsrProfile;
use mvp_audio::Waveform;
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears::DetectionSystem;
use mvp_ml::ClassifierKind;
use mvp_obs::AuditLog;
use mvp_serve::{DegradePolicy, DetectionEngine, EngineConfig};

/// Conservative upper bound on span sites crossed by one serve request
/// (submit + flush + per-auxiliary transcribe/features/decode + finalize).
const SPAN_SITES_PER_REQUEST: f64 = 64.0;

/// Stage names a traced detection must emit.
const REQUIRED_SPANS: [&str; 6] = [
    "detect",
    "detect.transcribe",
    "detect.similarity",
    "detect.classify",
    "asr.features",
    "asr.decode",
];

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("obs smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("obs smoke: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let system = trained_system();
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 3, seed: 77, ..CorpusConfig::default() }).build();
    let waves: Vec<Arc<Waveform>> =
        corpus.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();

    disabled_overhead_gate(&system, &waves[0])?;
    tracing_gate(&system, &waves[0])?;
    audit_and_metrics_gate(&system, &waves)?;
    Ok(())
}

/// DS0 + {DS1, GCS} trained on synthetic well-separated score vectors, so
/// the smoke needs no attack run.
fn trained_system() -> Arc<DetectionSystem> {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .build();
    let n_aux = system.n_auxiliaries();
    let benign: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..n_aux).map(|j| 0.82 + 0.015 * ((i + j) % 10) as f64).collect())
        .collect();
    let aes: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..n_aux).map(|j| 0.03 + 0.015 * ((i * 3 + j) % 10) as f64).collect())
        .collect();
    system.train_on_scores(&benign, &aes, ClassifierKind::Knn);
    Arc::new(system)
}

/// Gate 1: disabled span sites must cost < 2 % of a detection.
fn disabled_overhead_gate(system: &DetectionSystem, wave: &Waveform) -> Result<(), String> {
    mvp_obs::trace::disable();

    let iterations = 2_000_000u64;
    let started = Instant::now();
    for _ in 0..iterations {
        let _guard = mvp_obs::trace::span("smoke.noop");
    }
    let per_span_ns = started.elapsed().as_nanos() as f64 / iterations as f64;

    let started = Instant::now();
    let detections = 3;
    for _ in 0..detections {
        let _ = system.detect(wave);
    }
    let detect_ns = started.elapsed().as_nanos() as f64 / f64::from(detections);

    let overhead_pct = per_span_ns * SPAN_SITES_PER_REQUEST / detect_ns * 100.0;
    println!(
        "disabled span: {per_span_ns:.1} ns/site, detection: {:.2} ms -> worst-case overhead {overhead_pct:.4}%",
        detect_ns / 1e6
    );
    if overhead_pct >= 2.0 {
        return Err(format!("disabled-tracing overhead bound {overhead_pct:.2}% exceeds 2%"));
    }
    Ok(())
}

/// Gate 2: a traced detection yields a valid forest with every stage.
fn tracing_gate(system: &DetectionSystem, wave: &Waveform) -> Result<(), String> {
    mvp_obs::trace::enable(4096);
    let _ = system.detect(wave);
    let events = mvp_obs::trace::drain();
    mvp_obs::trace::disable();

    mvp_obs::trace::validate(&events).map_err(|e| format!("span forest invalid: {e}"))?;
    for name in REQUIRED_SPANS {
        if !events.iter().any(|e| e.name == name) {
            return Err(format!("traced detection emitted no `{name}` span"));
        }
    }
    let tree = mvp_obs::trace::render_tree(&events);
    println!("traced detection ({} spans):\n{tree}", events.len());
    Ok(())
}

/// Gates 3 and 4: serve-path audit records and metric/snapshot agreement.
fn audit_and_metrics_gate(
    system: &Arc<DetectionSystem>,
    waves: &[Arc<Waveform>],
) -> Result<(), String> {
    let path = std::env::temp_dir().join(format!("mvp-obs-smoke-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let audit =
        Arc::new(AuditLog::create(&path, 1 << 20).map_err(|e| format!("audit create: {e}"))?);

    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig {
        deadline_ms: 60_000,
        audit: Some(Arc::clone(&audit)),
        ..EngineConfig::default()
    };
    let engine = DetectionEngine::start(Arc::clone(system), policy, config);
    for wave in waves {
        engine.detect_blocking(Arc::clone(wave)).map_err(|e| format!("submit: {e:?}"))?;
    }
    // Exact replay: must come back from the cache and still be audited.
    let replay =
        engine.detect_blocking(Arc::clone(&waves[0])).map_err(|e| format!("replay: {e:?}"))?;
    if !replay.from_cache {
        return Err("replayed waveform was not answered from the cache".into());
    }

    let exposition = engine.metrics_text();
    let stats = engine.stats();
    engine.shutdown();

    // Gate 3: every verdict has a parseable record with decision fields.
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read audit: {e}"))?;
    let _ = std::fs::remove_file(&path);
    let mut verdicts = 0u64;
    let mut cache_hits = 0u64;
    for (k, line) in text.lines().enumerate() {
        let record =
            mvp_obs::json::parse(line).map_err(|e| format!("audit line {}: {e}", k + 1))?;
        let event = record
            .get("event")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("audit line {} has no event field", k + 1))?;
        if event != "verdict" {
            continue;
        }
        verdicts += 1;
        for field in ["request", "kind", "adversarial", "timing"] {
            if record.get(field).is_none() {
                return Err(format!("verdict record {} lacks `{field}`: {line}", k + 1));
            }
        }
        if record.get("timing").and_then(|t| t.get("total_us")).and_then(|v| v.as_f64()).is_none() {
            return Err(format!("verdict record {} lacks timing.total_us", k + 1));
        }
        if record.get("cache").and_then(|v| v.as_bool()) == Some(true) {
            cache_hits += 1;
        }
    }
    let expected = waves.len() as u64 + 1;
    if verdicts != expected {
        return Err(format!("{expected} verdicts served but {verdicts} audited"));
    }
    if cache_hits == 0 {
        return Err("the cache-hit verdict produced no cache:true audit record".into());
    }
    println!("audit: {verdicts} verdict records ({cache_hits} cache hits), all parse");

    // Gate 4: the exposition and the snapshot are the same numbers.
    for (name, value) in [
        ("serve_submitted_total", stats.submitted),
        ("serve_completed_total", stats.completed),
        ("serve_cache_hits_total", stats.cache_hits),
        ("serve_shed_total", stats.shed),
    ] {
        let line = format!("{name} {value}");
        if !exposition.lines().any(|l| l == line) {
            return Err(format!("exposition lacks `{line}`:\n{exposition}"));
        }
    }
    println!("metrics: exposition agrees with the stats snapshot");
    Ok(())
}
