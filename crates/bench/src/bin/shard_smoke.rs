//! CI smoke test for the streaming/sharding plane. Exits non-zero on
//! any failure, so `scripts/ci.sh` can gate on it. Two gates:
//!
//! 1. **Shard scaling**: a 4-shard router must beat a single engine by
//!    at least 1.5x throughput on the tiny working set. CI has one
//!    core, so the speedup comes from cache affinity: the per-shard
//!    cache is sized below the distinct-waveform set, which makes one
//!    shard thrash its LRU on every pass while four shards keep their
//!    content-hashed residents cached.
//! 2. **Streaming parity**: a forced chunked run (early exit off) must
//!    produce exactly the one-shot verdict — same flag, same scores,
//!    same transcript — for every tiny-scale utterance.

use std::process::ExitCode;
use std::sync::Arc;

use mvp_asr::AsrProfile;
use mvp_audio::Waveform;
use mvp_bench::{ExperimentContext, Scale};
use mvp_ears::{DetectionSystem, SimilarityMethod};
use mvp_ml::ClassifierKind;
use mvp_serve::{
    run_load, DegradePolicy, DetectionEngine, EngineConfig, LoadMode, LoadSpec, RouterConfig,
    ShardRouter,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("shard smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("shard smoke: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let ctx = ExperimentContext::load_or_generate(Scale::TINY);
    let method = SimilarityMethod::default();
    let aux: Vec<AsrProfile> = mvp_bench::experiments::THREE_AUX.to_vec();

    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(aux[0])
        .auxiliary(aux[1])
        .auxiliary(aux[2])
        .build();
    let benign_scores = ctx.benign_scores(&aux, method);
    let ae_scores = ctx.ae_scores(&aux, method, None);
    system.train_on_scores(&benign_scores, &ae_scores, ClassifierKind::Svm);
    let system = Arc::new(system);
    let n_aux = system.n_auxiliaries();

    let corpus: Vec<Arc<Waveform>> =
        ctx.benign.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();
    if corpus.is_empty() {
        return Err("tiny corpus is empty".into());
    }

    scaling_gate(&system, n_aux, &benign_scores, &ae_scores, &corpus)?;
    parity_gate(&system, n_aux, &corpus)
}

/// Gate 1: 4 shards must beat 1 shard by >= 1.5x on the same workload.
fn scaling_gate(
    system: &Arc<DetectionSystem>,
    n_aux: usize,
    benign_scores: &[Vec<f64>],
    ae_scores: &[Vec<f64>],
    corpus: &[Arc<Waveform>],
) -> Result<(), String> {
    let engine = EngineConfig {
        queue_cap: 64,
        max_batch: 8,
        max_delay_ms: 2,
        deadline_ms: 120_000,
        // Smaller than the distinct set: one shard must thrash.
        cache_cap: (corpus.len() / 3).max(2),
        ..EngineConfig::default()
    };
    let mut rps = Vec::new();
    for n_shards in [1usize, 4] {
        let spec = LoadSpec {
            name: format!("smoke-x{n_shards}"),
            requests: corpus.len() * 3,
            mode: LoadMode::Closed { concurrency: 4 },
            duplicate_frac: 0.0,
            seed: 77,
        };
        let config = RouterConfig { n_shards, steal_depth: 64, engine: engine.clone() };
        let router = ShardRouter::start(Arc::clone(system), config, |_| {
            DegradePolicy::trained(n_aux, benign_scores, ae_scores, ClassifierKind::Knn, 0.05)
        });
        let report = run_load(&router, corpus, &spec);
        router.shutdown();
        if report.tally.total() != report.offered as u64 {
            return Err(format!(
                "{}: answered {} of {} requests",
                report.name,
                report.tally.total(),
                report.offered
            ));
        }
        rps.push(report.throughput_rps);
    }
    let speedup = rps[1] / rps[0].max(1e-9);
    println!("scaling gate: 1 shard {:.1} rps, 4 shards {:.1} rps ({speedup:.2}x)", rps[0], rps[1]);
    if speedup < 1.5 {
        return Err(format!("4-shard speedup {speedup:.2}x below the 1.5x floor"));
    }
    Ok(())
}

/// Gate 2: chunked ingress with early exit off reproduces the one-shot
/// verdict exactly.
fn parity_gate(
    system: &Arc<DetectionSystem>,
    n_aux: usize,
    corpus: &[Arc<Waveform>],
) -> Result<(), String> {
    let config = EngineConfig { deadline_ms: 120_000, ..EngineConfig::default() };
    let engine =
        DetectionEngine::start(Arc::clone(system), DegradePolicy::untrained(n_aux), config);
    for (i, wave) in corpus.iter().enumerate() {
        let expected = system.detect(wave);
        let mut handle = engine.submit_stream().map_err(|e| format!("open stream {i}: {e:?}"))?;
        for chunk in wave.samples().chunks(1_600) {
            handle.push(chunk).map_err(|e| format!("push on stream {i}: {e:?}"))?;
        }
        let verdict = handle.finish().map_err(|e| format!("finish stream {i}: {e:?}"))?;
        let scores: Vec<f64> = verdict.scores.iter().map(|s| s.unwrap_or(f64::NAN)).collect();
        if verdict.is_adversarial != Some(expected.is_adversarial)
            || scores != expected.scores
            || verdict.target_transcription.as_deref()
                != Some(expected.target_transcription.as_str())
        {
            return Err(format!("chunked verdict diverged from one-shot on utterance {i}"));
        }
    }
    engine.shutdown();
    println!("parity gate: chunked verdicts match one-shot on {} utterances", corpus.len());
    Ok(())
}
