//! Regenerates the paper's Figure 4 (similarity-score histograms).
//!
//! Scale via `MVP_EARS_SCALE` (tiny / quick / full).

use mvp_bench::{ExperimentContext, Scale};

fn main() {
    let ctx = ExperimentContext::load_or_generate(Scale::from_env());
    mvp_bench::experiments::data::fig4(&ctx);
}
