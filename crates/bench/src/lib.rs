#![warn(missing_docs)]

//! Experiment harness reproducing every table and figure of the MVP-EARS
//! paper's evaluation (Section V) plus the Section III transferability
//! study.
//!
//! Each `exp_*` binary regenerates one artifact; `run_all` runs the whole
//! evaluation. The expensive inputs — verified AE datasets and per-profile
//! transcriptions — are generated once per scale and cached on disk under
//! `data/<scale>/`, so subsequent binaries start instantly.
//!
//! Scale is controlled by the `MVP_EARS_SCALE` environment variable:
//! `tiny` (CI smoke), `quick` (default; a few minutes of one-time dataset
//! generation on one core) or `full` (the paper's 2400+2400 counts — hours
//! of attack generation).

pub mod context;
pub mod experiments;
pub mod scale;
pub mod table;

pub use context::ExperimentContext;
pub use scale::Scale;
pub use table::Table;
