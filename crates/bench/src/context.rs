//! Shared experiment state: datasets, cached AEs and cached transcripts.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use mvp_asr::{Asr, AsrProfile};
use mvp_attack::{blackbox_commands, generate_ae_dataset, AeKind, GeneratedAe};
use mvp_audio::wav::{read_wav, write_wav};
use mvp_corpus::{command_phrases, CorpusBuilder, CorpusConfig, SpeechCorpus};
use mvp_ears::SimilarityMethod;
use mvp_ml::{Dataset, Mat};

use crate::scale::Scale;

/// The ASR profiles every audio is transcribed with (cache columns).
pub const PROFILES: [AsrProfile; 5] =
    [AsrProfile::Ds0, AsrProfile::Ds1, AsrProfile::Gcs, AsrProfile::At, AsrProfile::Kaldi];

/// Packs per-sample score vectors into one contiguous [`Mat`] — the bridge
/// from experiment-level `Vec<Vec<f64>>` collections to the data plane's
/// matrix carrier.
///
/// # Panics
///
/// Panics if the rows are ragged.
pub fn score_mat(rows: Vec<Vec<f64>>) -> Mat {
    let d = rows.first().map_or(0, Vec::len);
    Mat::from_rows(rows, d)
}

/// All datasets and cached transcriptions for one scale.
pub struct ExperimentContext {
    /// The scale this context was built at.
    pub scale: Scale,
    /// Benign dataset (LibriSpeech dev_clean substitute).
    pub benign: SpeechCorpus,
    /// Verified AEs (white-box first, then black-box), with stable ids.
    pub aes: Vec<(String, GeneratedAe)>,
    transcripts: HashMap<(String, &'static str), String>,
}

fn data_dir(scale: &Scale) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("data").join(scale.name)
}

/// Where this scale's trained ASR artifacts live
/// (`data/<scale>/models/`). The context routes every profile through
/// this disk tier, so re-runs warm-start instead of retraining.
pub fn models_dir(scale: &Scale) -> PathBuf {
    data_dir(scale).join("models")
}

impl ExperimentContext {
    /// Loads the cached context for `scale`, generating (and caching) any
    /// missing pieces. The first call at a given scale pays for AE
    /// generation and transcription; later calls are instant.
    ///
    /// # Panics
    ///
    /// Panics on unreadable/corrupt cache files or I/O failures.
    pub fn load_or_generate(scale: Scale) -> ExperimentContext {
        let dir = data_dir(&scale);
        fs::create_dir_all(&dir).expect("create data dir");

        let benign = CorpusBuilder::new(CorpusConfig {
            size: scale.benign,
            seed: 42,
            noise_prob: 0.5,
            ..CorpusConfig::default()
        })
        .build();

        let aes = Self::load_or_generate_aes(&scale, &dir);
        let mut ctx = ExperimentContext { scale, benign, aes, transcripts: HashMap::new() };
        ctx.load_or_generate_transcripts(&dir);
        ctx
    }

    /// This scale's ASR model directory (`data/<scale>/models/`).
    pub fn models_dir(&self) -> PathBuf {
        models_dir(&self.scale)
    }

    fn load_or_generate_aes(scale: &Scale, dir: &Path) -> Vec<(String, GeneratedAe)> {
        let manifest = dir.join("aes.tsv");
        let wav_dir = dir.join("ae_wavs");
        if manifest.exists() {
            let text = fs::read_to_string(&manifest).expect("read AE manifest");
            let mut out = Vec::new();
            for line in text.lines().skip(1) {
                let cols: Vec<&str> = line.split('\t').collect();
                assert_eq!(cols.len(), 5, "corrupt AE manifest line: {line}");
                let id = cols[0].to_string();
                let kind = match cols[1] {
                    "white-box" => AeKind::WhiteBox,
                    "black-box" => AeKind::BlackBox,
                    other => panic!("unknown AE kind {other}"),
                };
                let file =
                    fs::File::open(wav_dir.join(format!("{id}.wav"))).expect("open cached AE wav");
                let wave = read_wav(std::io::BufReader::new(file)).expect("read cached AE wav");
                out.push((
                    id,
                    GeneratedAe {
                        kind,
                        host_text: cols[2].to_string(),
                        command: cols[3].to_string(),
                        wave,
                        similarity: cols[4].parse().expect("similarity column"),
                    },
                ));
            }
            return out;
        }

        eprintln!(
            "[mvp-bench] generating AE dataset at scale {:?} ({} white-box + {} black-box); \
             this is a one-time cost",
            scale.name, scale.whitebox, scale.blackbox
        );
        let ds0 = AsrProfile::Ds0.trained_in(Some(&models_dir(scale)));
        let hosts = CorpusBuilder::new(CorpusConfig {
            size: scale.whitebox.clamp(12, 80),
            seed: 4242,
            noise_prob: 0.0,
            ..CorpusConfig::default()
        })
        .build();
        let t0 = std::time::Instant::now();
        let wb = generate_ae_dataset(
            &ds0,
            hosts.utterances(),
            &command_phrases(),
            AeKind::WhiteBox,
            scale.whitebox,
            1,
        );
        eprintln!("[mvp-bench] {} white-box AEs in {:?}", wb.len(), t0.elapsed());
        let t1 = std::time::Instant::now();
        let bb = generate_ae_dataset(
            &ds0,
            hosts.utterances(),
            &blackbox_commands(),
            AeKind::BlackBox,
            scale.blackbox,
            2,
        );
        eprintln!("[mvp-bench] {} black-box AEs in {:?}", bb.len(), t1.elapsed());

        let mut out: Vec<(String, GeneratedAe)> = Vec::new();
        for (i, ae) in wb.into_iter().enumerate() {
            out.push((format!("wb{i}"), ae));
        }
        for (i, ae) in bb.into_iter().enumerate() {
            out.push((format!("bb{i}"), ae));
        }

        fs::create_dir_all(&wav_dir).expect("create AE wav dir");
        let mut m = String::from("id\tkind\thost\tcommand\tsimilarity\n");
        for (id, ae) in &out {
            let file = fs::File::create(wav_dir.join(format!("{id}.wav"))).expect("create AE wav");
            write_wav(std::io::BufWriter::new(file), &ae.wave).expect("write AE wav");
            m.push_str(&format!(
                "{id}\t{}\t{}\t{}\t{:.6}\n",
                ae.kind, ae.host_text, ae.command, ae.similarity
            ));
        }
        fs::write(&manifest, m).expect("write AE manifest");
        out
    }

    fn load_or_generate_transcripts(&mut self, dir: &Path) {
        let path = dir.join("transcripts.tsv");
        if path.exists() {
            for line in fs::read_to_string(&path).expect("read transcripts").lines().skip(1) {
                let cols: Vec<&str> = line.splitn(3, '\t').collect();
                assert_eq!(cols.len(), 3, "corrupt transcript line: {line}");
                let profile = PROFILES
                    .iter()
                    .find(|p| p.name() == cols[1])
                    .unwrap_or_else(|| panic!("unknown profile {}", cols[1]));
                self.transcripts.insert((cols[0].to_string(), profile.name()), cols[2].to_string());
            }
        }
        // Compute anything missing (covers both cold cache and scale bumps).
        let ids: Vec<(String, mvp_audio::Waveform)> = self
            .benign
            .utterances()
            .iter()
            .map(|u| (format!("b{}", u.id), u.wave.clone()))
            .chain(self.aes.iter().map(|(id, ae)| (id.clone(), ae.wave.clone())))
            .collect();
        let mut missing = 0usize;
        for profile in PROFILES {
            if ids
                .iter()
                .all(|(id, _)| self.transcripts.contains_key(&(id.clone(), profile.name())))
            {
                continue;
            }
            let asr = profile.trained_in(Some(&models_dir(&self.scale)));
            for (id, wave) in &ids {
                let key = (id.clone(), profile.name());
                if let std::collections::hash_map::Entry::Vacant(e) = self.transcripts.entry(key) {
                    e.insert(asr.transcribe(wave));
                    missing += 1;
                }
            }
        }
        if missing > 0 {
            eprintln!("[mvp-bench] transcribed {missing} (audio, profile) pairs");
            let mut f =
                std::io::BufWriter::new(fs::File::create(&path).expect("create transcripts cache"));
            writeln!(f, "id\tprofile\ttext").expect("write transcripts");
            let mut entries: Vec<_> = self.transcripts.iter().collect();
            entries.sort();
            for ((id, profile), text) in entries {
                writeln!(f, "{id}\t{profile}\t{text}").expect("write transcripts");
            }
        }
    }

    /// The cached transcription of audio `id` by `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not in the cache (unknown id or profile).
    pub fn transcript(&self, id: &str, profile: AsrProfile) -> &str {
        self.transcripts
            .get(&(id.to_string(), profile.name()))
            .unwrap_or_else(|| panic!("no transcript for ({id}, {profile})"))
    }

    /// Benign audio ids, in dataset order.
    pub fn benign_ids(&self) -> Vec<String> {
        self.benign.utterances().iter().map(|u| format!("b{}", u.id)).collect()
    }

    /// Similarity-score vectors of every benign sample for a system with
    /// target DS0 and the given auxiliaries.
    pub fn benign_scores(&self, aux: &[AsrProfile], method: SimilarityMethod) -> Vec<Vec<f64>> {
        self.benign_ids().iter().map(|id| self.score_vector(id, aux, method)).collect()
    }

    /// Score vectors of AEs, optionally restricted to one attack kind.
    pub fn ae_scores(
        &self,
        aux: &[AsrProfile],
        method: SimilarityMethod,
        kind: Option<AeKind>,
    ) -> Vec<Vec<f64>> {
        self.aes
            .iter()
            .filter(|(_, ae)| kind.is_none_or(|k| ae.kind == k))
            .map(|(id, _)| self.score_vector(id, aux, method))
            .collect()
    }

    /// The score vector of one cached audio id for the given system shape.
    pub fn score_vector(&self, id: &str, aux: &[AsrProfile], method: SimilarityMethod) -> Vec<f64> {
        let target = self.transcript(id, AsrProfile::Ds0);
        aux.iter().map(|&a| method.score(target, self.transcript(id, a))).collect()
    }

    /// Builds the benign/AE classification dataset for a system shape.
    pub fn dataset(&self, aux: &[AsrProfile], method: SimilarityMethod) -> Dataset {
        Dataset::from_classes(
            score_mat(self.benign_scores(aux, method)),
            score_mat(self.ae_scores(aux, method, None)),
        )
    }

    /// Paper-style system name for an auxiliary set.
    pub fn system_name(aux: &[AsrProfile]) -> String {
        format!("DS0+{{{}}}", aux.iter().map(|a| a.name()).collect::<Vec<_>>().join(", "))
    }
}
