//! §V-I detection-overhead benchmark: target-only recognition vs the full
//! parallel MVP-EARS pipeline, plus the similarity and classification
//! components in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mvp_asr::{Asr, AsrProfile};
use mvp_audio::synth::{SpeakerProfile, Synthesizer};
use mvp_ears::DetectionSystem;
use mvp_ml::ClassifierKind;
use mvp_phonetics::Lexicon;

fn bench_overhead(c: &mut Criterion) {
    let synth = Synthesizer::new(16_000);
    let lex = Lexicon::builtin();
    let (wave, _) = synth.synthesize(&lex, "turn on the kitchen light", &SpeakerProfile::default());

    let ds0 = AsrProfile::Ds0.trained();
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
    let benign: Vec<Vec<f64>> = (0..20).map(|i| vec![0.9 + (i % 5) as f64 * 0.01]).collect();
    let aes: Vec<Vec<f64>> = (0..20).map(|i| vec![0.3 + (i % 5) as f64 * 0.01]).collect();
    system.train_on_scores(&benign, &aes, ClassifierKind::Svm);

    c.bench_function("recognition_target_only", |b| {
        b.iter(|| black_box(ds0.transcribe(black_box(&wave))))
    });

    c.bench_function("recognition_parallel_pair", |b| {
        b.iter(|| black_box(system.transcripts(black_box(&wave))))
    });

    let (target, aux) = system.transcripts(&wave);
    c.bench_function("similarity_component", |b| {
        b.iter(|| black_box(system.scores_from_transcripts(black_box(&target), black_box(&aux))))
    });

    let scores = system.scores_from_transcripts(&target, &aux);
    c.bench_function("classification_component", |b| {
        b.iter(|| black_box(system.classify_scores(black_box(&scores))))
    });

    c.bench_function("detect_end_to_end", |b| {
        b.iter(|| black_box(system.detect(black_box(&wave)).is_adversarial))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_overhead
}
criterion_main!(benches);
