//! Attack-cost benchmarks: the per-iteration cost of the white-box
//! optimiser (one full gradient through CTC → acoustic model → MFCC →
//! waveform) and of a black-box loss query.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mvp_asr::{AsrProfile, TrainedAsr};
use mvp_audio::synth::{SpeakerProfile, Synthesizer};
use mvp_phonetics::Lexicon;

fn bench_attack(c: &mut Criterion) {
    let synth = Synthesizer::new(16_000);
    let lex = Lexicon::builtin();
    let (wave, _) = synth.synthesize(&lex, "good morning", &SpeakerProfile::default());
    let ds0 = AsrProfile::Ds0.trained();
    let target = TrainedAsr::target_indices("open the front door");

    c.bench_function("whitebox_gradient_step_1s", |b| {
        b.iter(|| {
            black_box(ds0.attack_loss_and_input_grad(black_box(&wave), black_box(&target), 3.0))
        })
    });

    c.bench_function("blackbox_loss_query_1s", |b| {
        b.iter(|| black_box(ds0.ctc_loss(black_box(&wave), black_box(&target))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_attack
}
criterion_main!(benches);
