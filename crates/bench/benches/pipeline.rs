//! Stage-level benchmarks of the ASR pipeline: FFT, MFCC extraction,
//! acoustic scoring, decoding and similarity calculation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mvp_asr::{Asr, AsrProfile};
use mvp_audio::synth::{SpeakerProfile, Synthesizer};
use mvp_dsp::complex::Complex;
use mvp_dsp::fft::fft;
use mvp_dsp::mfcc::{MfccConfig, MfccExtractor};
use mvp_ears::SimilarityMethod;
use mvp_phonetics::Lexicon;

fn bench_pipeline(c: &mut Criterion) {
    let synth = Synthesizer::new(16_000);
    let lex = Lexicon::builtin();
    let (wave, _) = synth.synthesize(&lex, "the man walked the street", &SpeakerProfile::default());
    let samples = wave.to_f64();

    c.bench_function("fft_512", |b| {
        let base: Vec<Complex> =
            (0..512).map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0)).collect();
        b.iter(|| {
            let mut buf = base.clone();
            fft(black_box(&mut buf));
            black_box(buf[1])
        })
    });

    let extractor = MfccExtractor::new(MfccConfig::default());
    c.bench_function("mfcc_extract_2s", |b| {
        b.iter(|| black_box(extractor.extract(black_box(&samples))))
    });

    let ds0 = AsrProfile::Ds0.trained();
    c.bench_function("acoustic_logits_2s", |b| {
        let feats = ds0.frontend().features(&wave);
        b.iter(|| black_box(ds0.acoustic_model().logit_matrix(black_box(&feats))))
    });

    c.bench_function("transcribe_2s", |b| b.iter(|| black_box(ds0.transcribe(black_box(&wave)))));

    let method = SimilarityMethod::default();
    c.bench_function("similarity_pe_jarowinkler", |b| {
        b.iter(|| {
            black_box(method.score(
                black_box("the man walked the street in the morning"),
                black_box("the man walked the street in the mourning"),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
}
criterion_main!(benches);
