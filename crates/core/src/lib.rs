#![warn(missing_docs)]

//! MVP-EARS: multiversion-programming-inspired detection of audio
//! adversarial examples.
//!
//! The paper's core idea: run a *target* ASR alongside one or more diverse
//! *auxiliary* ASRs, convert each transcription to a phonetic encoding,
//! compute one similarity score per auxiliary (Jaro-Winkler over the
//! encodings), and let a binary classifier decide from the score vector
//! whether the audio is adversarial — benign audio yields high inter-ASR
//! agreement, AEs do not, because audio AEs do not transfer across diverse
//! ASRs.
//!
//! Modules:
//!
//! - [`similarity`] — the similarity-calculation component (§IV-C, ablated
//!   in Table III);
//! - [`system`] — the [`DetectionSystem`]: parallel multi-ASR execution,
//!   score-vector extraction, classifier training and detection;
//! - [`stream`] — incremental detection: chunked audio ingress with an
//!   early-exit rule that can fire `Adversarial` before end-of-stream;
//! - [`threshold`] — the benign-only threshold detector of §V-G;
//! - [`fusion`] — the [`FusedClassifier`]: similarity scores fused with
//!   `mvp-modality` feature blocks (and a benign-only one-class score
//!   over the instability block);
//! - [`snapshot`] — whole-system checkpointing through the artifact plane
//!   ([`DetectionSystemSnapshot`]), for warm-starting serving processes;
//! - [`mae`] — synthesis of hypothetical multiple-ASR-effective AEs and
//!   the proactive training of §V-H;
//! - [`eval`] — score-pool collection and experiment helpers.
//!
//! # Examples
//!
//! ```no_run
//! use mvp_asr::AsrProfile;
//! use mvp_ears::DetectionSystem;
//! use mvp_ml::ClassifierKind;
//!
//! // DS0+{DS1, GCS, AT}: the paper's best system (99.88% accuracy).
//! let mut system = DetectionSystem::builder(AsrProfile::Ds0)
//!     .auxiliary(AsrProfile::Ds1)
//!     .auxiliary(AsrProfile::Gcs)
//!     .auxiliary(AsrProfile::At)
//!     .build();
//! # let (benign, adversarial): (Vec<mvp_audio::Waveform>, Vec<mvp_audio::Waveform>) = (vec![], vec![]);
//! system.train(&benign, &adversarial, ClassifierKind::Svm);
//! # let audio = mvp_audio::Waveform::new(16_000);
//! let verdict = system.detect(&audio);
//! println!("adversarial: {} (scores {:?})", verdict.is_adversarial, verdict.scores);
//! ```

pub mod baseline;
pub mod eval;
pub mod fusion;
pub mod mae;
pub mod similarity;
pub mod snapshot;
pub mod stream;
pub mod system;
pub mod threshold;

pub use baseline::MajorityBaseline;
pub use eval::ScorePools;
pub use fusion::{FusedClassifier, FusionLayout};
pub use mae::{synthesize_mae, MaeType};
pub use similarity::SimilarityMethod;
pub use snapshot::DetectionSystemSnapshot;
pub use stream::{DetectionStream, EarlyExit};
pub use system::{fit_classifier, Detection, DetectionSystem, DetectionSystemBuilder};
pub use threshold::{ThresholdBank, ThresholdDetector};
