//! Score-pool collection and experiment helpers.

use mvp_audio::Waveform;
use mvp_ml::Mat;

use crate::system::DetectionSystem;

/// Per-auxiliary pools of benign (λBe) and attack (λAk) similarity scores
/// (paper §V-H), collected from real audio datasets and sampled during MAE
/// synthesis.
///
/// Each pool is a contiguous [`Mat`] with one row per auxiliary ASR and
/// one column per scored sample, so MAE synthesis draws from cache-local
/// rows instead of chasing per-auxiliary allocations.
#[derive(Debug, Clone, Default)]
pub struct ScorePools {
    /// Row `i` = benign-score pool of auxiliary `i`.
    benign: Mat,
    /// Row `i` = AE-score pool of auxiliary `i`.
    attack: Mat,
}

impl ScorePools {
    /// Wraps per-auxiliary pools (rows = auxiliaries, columns = samples).
    ///
    /// # Panics
    ///
    /// Panics if the auxiliary (row) counts differ.
    pub fn new(benign: Mat, attack: Mat) -> ScorePools {
        assert_eq!(benign.n_rows(), attack.n_rows(), "auxiliary count mismatch");
        ScorePools { benign, attack }
    }

    /// Builds pools by transposing per-sample score vectors.
    ///
    /// # Panics
    ///
    /// Panics if vectors are ragged or either set is empty.
    pub fn from_score_vectors(benign: &[Vec<f64>], attack: &[Vec<f64>]) -> ScorePools {
        assert!(!benign.is_empty() && !attack.is_empty(), "empty score set");
        let n = benign[0].len();
        assert!(benign.iter().chain(attack).all(|v| v.len() == n), "ragged score vectors");
        let transpose = |vecs: &[Vec<f64>]| -> Mat {
            let mut m = Mat::zeros(n, vecs.len());
            for (j, v) in vecs.iter().enumerate() {
                for (i, &s) in v.iter().enumerate() {
                    m.row_mut(i)[j] = s;
                }
            }
            m
        };
        ScorePools { benign: transpose(benign), attack: transpose(attack) }
    }

    /// Collects pools by scoring benign and AE audio through `system`.
    pub fn collect(
        system: &DetectionSystem,
        benign: &[Waveform],
        adversarial: &[Waveform],
    ) -> ScorePools {
        let b: Vec<_> = benign.iter().map(|w| system.score_vector(w)).collect();
        let a: Vec<_> = adversarial.iter().map(|w| system.score_vector(w)).collect();
        ScorePools::from_score_vectors(&b, &a)
    }

    /// Number of auxiliaries the pools cover.
    pub fn n_auxiliaries(&self) -> usize {
        self.benign.n_rows()
    }

    /// The benign pool of auxiliary `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn benign(&self, i: usize) -> &[f64] {
        self.benign.row(i)
    }

    /// The attack pool of auxiliary `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn attack(&self, i: usize) -> &[f64] {
        self.attack.row(i)
    }
}

/// Formats a ratio as the paper's `"957/960 (99.69%)"` style.
pub fn ratio_cell(hits: usize, total: usize) -> String {
    if total == 0 {
        return "0/0 (—)".to_string();
    }
    format!("{hits}/{total} ({:.2}%)", hits as f64 / total as f64 * 100.0)
}

/// Formats a probability as a percentage with two decimals.
pub fn pct(p: f64) -> String {
    format!("{:.2}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_pools() {
        let benign = vec![vec![0.9, 0.8], vec![0.7, 0.6]];
        let attack = vec![vec![0.1, 0.2]];
        let p = ScorePools::from_score_vectors(&benign, &attack);
        assert_eq!(p.n_auxiliaries(), 2);
        assert_eq!(p.benign(0), &[0.9, 0.7]);
        assert_eq!(p.benign(1), &[0.8, 0.6]);
        assert_eq!(p.attack(0), &[0.1]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio_cell(957, 960), "957/960 (99.69%)");
        assert_eq!(pct(0.0421), "4.21%");
        assert_eq!(ratio_cell(0, 0), "0/0 (—)");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_vectors_rejected() {
        ScorePools::from_score_vectors(&[vec![0.1, 0.2]], &[vec![0.1]]);
    }
}
