//! The MVP-EARS detection system (paper Figure 3).
//!
//! An audio is fed to the target ASR and every auxiliary ASR *in parallel*
//! (one thread per recogniser, results collected over a channel — the
//! multiversion-programming execution model). The similarity-calculation
//! component reduces the transcriptions to one score per auxiliary, and a
//! binary classifier over the score vector produces the verdict.

use std::sync::Arc;

use crossbeam::channel;

use mvp_asr::{Asr, AsrProfile, TrainedAsr};
use mvp_audio::Waveform;
use mvp_ml::{Classifier, ClassifierKind, Dataset, FittedClassifier, Mat};
use mvp_modality::{ModalityInput, ModalityKind, ModalityOutcome, ModalityRegistry};

use crate::fusion::{FusedClassifier, FusionLayout};
use crate::similarity::SimilarityMethod;

/// The verdict for one audio input.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Whether the classifier flagged the audio as adversarial.
    pub is_adversarial: bool,
    /// One similarity score per auxiliary ASR (the classifier features).
    pub scores: Vec<f64>,
    /// The target ASR's transcription.
    pub target_transcription: String,
    /// The auxiliary transcriptions, in auxiliary order.
    pub auxiliary_transcriptions: Vec<String>,
    /// Concatenated modality feature blocks, in registry order; empty
    /// when the verdict came from similarity alone.
    pub modality_features: Vec<f64>,
    /// Whether the verdict came from the fused classifier.
    pub fused: bool,
    /// Whether a streaming early-exit rule fired this verdict before
    /// end-of-stream (see `stream::EarlyExit`). Always `false` for
    /// one-shot detection.
    pub early_exit: bool,
}

/// A configured (and optionally trained) MVP-EARS detection system.
pub struct DetectionSystem {
    target: Arc<TrainedAsr>,
    auxiliaries: Vec<Arc<TrainedAsr>>,
    method: SimilarityMethod,
    classifier: Option<FittedClassifier>,
    modalities: ModalityRegistry,
    fused: Option<FusedClassifier>,
}

impl std::fmt::Debug for DetectionSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionSystem")
            .field("name", &self.name())
            .field("method", &self.method)
            .field("trained", &self.classifier.is_some())
            .field("modalities", &self.modalities.kinds())
            .field("fused", &self.fused.is_some())
            .finish()
    }
}

impl DetectionSystem {
    /// Starts a builder with `target` as the target ASR profile.
    pub fn builder(target: AsrProfile) -> DetectionSystemBuilder {
        Self::builder_for(target.trained())
    }

    /// Starts a builder from an already-trained target ASR — the entry
    /// point for warm starts, where the model came off disk rather than
    /// from a profile's training recipe.
    pub fn builder_for(target: Arc<TrainedAsr>) -> DetectionSystemBuilder {
        DetectionSystemBuilder {
            target,
            auxiliaries: Vec::new(),
            method: SimilarityMethod::default(),
            modalities: Vec::new(),
        }
    }

    /// The paper's notation, e.g. `"DS0+{DS1, GCS, AT}"`.
    pub fn name(&self) -> String {
        format!(
            "{}+{{{}}}",
            self.target.name(),
            self.auxiliaries.iter().map(|a| a.name()).collect::<Vec<_>>().join(", ")
        )
    }

    /// Number of auxiliary ASRs (= classifier feature dimension).
    pub fn n_auxiliaries(&self) -> usize {
        self.auxiliaries.len()
    }

    /// The similarity method in use.
    pub fn method(&self) -> SimilarityMethod {
        self.method
    }

    /// The target ASR.
    pub fn target(&self) -> &TrainedAsr {
        &self.target
    }

    /// The auxiliary ASRs, in score-vector order.
    pub fn auxiliaries(&self) -> &[Arc<TrainedAsr>] {
        &self.auxiliaries
    }

    /// The trained classifier, if [`train`](Self::train) has run.
    pub fn classifier(&self) -> Option<&FittedClassifier> {
        self.classifier.as_ref()
    }

    /// Installs an externally trained classifier (e.g. one restored from a
    /// persisted snapshot). Callers must pair the classifier with the
    /// auxiliary set it was trained for — feature dimension is checked at
    /// prediction time, not here.
    pub fn set_classifier(&mut self, classifier: FittedClassifier) {
        self.classifier = Some(classifier);
    }

    /// The registered detection modalities (empty = similarity-only).
    pub fn modalities(&self) -> &ModalityRegistry {
        &self.modalities
    }

    /// The fused similarity + modality classifier, if
    /// [`train_fused`](Self::train_fused) has run (or a restored one was
    /// installed).
    pub fn fused_classifier(&self) -> Option<&FusedClassifier> {
        self.fused.as_ref()
    }

    /// Whether a fused classifier is available, so
    /// [`detect`](Self::detect) will use the modality plane.
    pub fn is_fused(&self) -> bool {
        self.fused.is_some()
    }

    /// The fused feature layout this system produces, or `None` when no
    /// modality is registered.
    pub fn fusion_layout(&self) -> Option<FusionLayout> {
        if self.modalities.is_empty() {
            return None;
        }
        Some(FusionLayout::new(self.n_auxiliaries(), self.modalities.kinds()))
    }

    /// Installs an externally trained fused classifier (e.g. one
    /// restored from a persisted snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the classifier's layout does not match this system's
    /// auxiliary count and registered modalities.
    pub fn set_fused_classifier(&mut self, fused: FusedClassifier) {
        let expected = self.fusion_layout().expect("no modalities registered");
        assert_eq!(
            *fused.layout(),
            expected,
            "fused classifier layout does not match the system's modalities"
        );
        self.fused = Some(fused);
    }

    /// Scores every registered modality on `wave` (the caller supplies
    /// the target transcription it already has), in registry order.
    pub fn score_modalities(&self, wave: &Waveform, target_text: &str) -> Vec<ModalityOutcome> {
        self.modalities.score_all(&ModalityInput::new(&self.target, wave, target_text))
    }

    /// The raw fused feature row for `wave`: similarity scores followed
    /// by the concatenated modality blocks (see
    /// [`FusionLayout::raw_dim`]).
    pub fn raw_feature_row(&self, wave: &Waveform) -> Vec<f64> {
        let (target, auxiliaries) = self.transcripts(wave);
        let mut row = self.scores_from_transcripts(&target, &auxiliaries);
        for outcome in self.score_modalities(wave, &target) {
            row.extend_from_slice(&outcome.features);
        }
        row
    }

    /// Trains the fused classifier from benign and adversarial audio:
    /// every wave is reduced to its raw fused feature row and
    /// [`FusedClassifier::fit`] runs over the two classes (fitting the
    /// benign-only one-class scorer along the way when the instability
    /// modality is registered).
    ///
    /// # Panics
    ///
    /// Panics if no modality is registered or either set is empty.
    pub fn train_fused(
        &mut self,
        benign: &[Waveform],
        adversarial: &[Waveform],
        kind: ClassifierKind,
    ) {
        assert!(!benign.is_empty() && !adversarial.is_empty(), "empty training class");
        let layout = self.fusion_layout().expect("no modalities registered");
        let rows = |waves: &[Waveform]| {
            Mat::from_rows(
                waves.iter().map(|w| self.raw_feature_row(w)).collect(),
                layout.raw_dim(),
            )
        };
        let (neg, pos) = (rows(benign), rows(adversarial));
        self.fused = Some(FusedClassifier::fit(layout, &neg, &pos, kind));
    }

    /// Trains the fused classifier directly on raw feature rows — the
    /// cached-dataset analogue of [`train_on_mats`](Self::train_on_mats)
    /// for the fused plane.
    ///
    /// # Panics
    ///
    /// Panics if no modality is registered, either class is empty, or a
    /// matrix width differs from the fusion layout's raw width.
    pub fn train_fused_on_mats(&mut self, benign: Mat, adversarial: Mat, kind: ClassifierKind) {
        let layout = self.fusion_layout().expect("no modalities registered");
        self.fused = Some(FusedClassifier::fit(layout, &benign, &adversarial, kind));
    }

    /// Every recogniser in execution order: the target first, then the
    /// auxiliaries. This is the seam a serving layer uses to pin one
    /// persistent worker per recogniser instead of spawning threads per
    /// call — see `mvp-serve`.
    pub fn recognizers(&self) -> Vec<Arc<TrainedAsr>> {
        std::iter::once(&self.target).chain(&self.auxiliaries).cloned().collect()
    }

    /// Number of recognisers (`1 + n_auxiliaries`).
    pub fn n_recognizers(&self) -> usize {
        1 + self.auxiliaries.len()
    }

    /// Splits a per-recogniser transcription vector (in
    /// [`recognizers`](Self::recognizers) order) into
    /// `(target, auxiliaries)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty vector.
    pub fn split_transcripts(mut texts: Vec<String>) -> (String, Vec<String>) {
        assert!(!texts.is_empty(), "no transcriptions");
        let auxiliaries = texts.split_off(1);
        (texts.pop().expect("target transcript present"), auxiliaries)
    }

    /// Transcribes `wave` on every recogniser via a caller-provided
    /// execution strategy: `run` receives the recognisers (target first)
    /// and must return one transcription per recogniser, in order. This
    /// lets callers supply persistent worker pools, batching, or serial
    /// execution; [`transcripts`](Self::transcripts) is the conventional
    /// thread-per-call wrapper.
    ///
    /// # Panics
    ///
    /// Panics if `run` returns the wrong number of transcriptions.
    pub fn transcribe_all<R>(&self, wave: &Waveform, run: R) -> (String, Vec<String>)
    where
        R: FnOnce(&[Arc<TrainedAsr>], &Waveform) -> Vec<String>,
    {
        let asrs = self.recognizers();
        let texts = run(&asrs, wave);
        assert_eq!(texts.len(), asrs.len(), "runner must return one transcription per recogniser");
        Self::split_transcripts(texts)
    }

    /// Transcribes `wave` on the target and every auxiliary concurrently
    /// (one short-lived thread per recogniser).
    ///
    /// Returns `(target transcription, auxiliary transcriptions)`.
    pub fn transcripts(&self, wave: &Waveform) -> (String, Vec<String>) {
        let _span = mvp_obs::span!("detect.transcribe");
        self.transcribe_all(wave, |asrs, wave| {
            let (tx, rx) = channel::unbounded::<(usize, String)>();
            std::thread::scope(|scope| {
                for (i, asr) in asrs.iter().enumerate() {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        // A send only fails if the receiver is gone, which
                        // cannot happen while this scope holds `rx`.
                        let _ = tx.send((i, asr.transcribe(wave)));
                    });
                }
            });
            drop(tx);
            let mut results: Vec<(usize, String)> = rx.iter().collect();
            results.sort_by_key(|(i, _)| *i);
            results.into_iter().map(|(_, t)| t).collect()
        })
    }

    /// The similarity-score feature vector for `wave` (one score per
    /// auxiliary).
    pub fn score_vector(&self, wave: &Waveform) -> Vec<f64> {
        let (target, auxiliaries) = self.transcripts(wave);
        self.scores_from_transcripts(&target, &auxiliaries)
    }

    /// Scores from already-computed transcriptions.
    pub fn scores_from_transcripts(&self, target: &str, auxiliaries: &[String]) -> Vec<f64> {
        let _span = mvp_obs::span!("detect.similarity");
        auxiliaries.iter().map(|a| self.method.score(target, a)).collect()
    }

    /// Trains the binary classifier from benign and adversarial audio.
    ///
    /// # Panics
    ///
    /// Panics if either set is empty.
    pub fn train(&mut self, benign: &[Waveform], adversarial: &[Waveform], kind: ClassifierKind) {
        assert!(!benign.is_empty() && !adversarial.is_empty(), "empty training class");
        let dim = self.n_auxiliaries();
        let mut neg = Mat::zeros(0, dim);
        for w in benign {
            neg.push_row(&self.score_vector(w));
        }
        let mut pos = Mat::zeros(0, dim);
        for w in adversarial {
            pos.push_row(&self.score_vector(w));
        }
        self.train_on_mats(neg, pos, kind);
    }

    /// Trains the classifier directly on score vectors — used both to
    /// avoid re-transcribing cached datasets and to train *proactively* on
    /// synthesized MAE feature vectors (§V-H), where no audio exists.
    ///
    /// # Panics
    ///
    /// Panics if either set is empty or vectors have the wrong dimension.
    pub fn train_on_scores(
        &mut self,
        benign_scores: &[Vec<f64>],
        ae_scores: &[Vec<f64>],
        kind: ClassifierKind,
    ) {
        let dim = self.n_auxiliaries();
        assert!(
            benign_scores.iter().chain(ae_scores).all(|v| v.len() == dim),
            "score vectors must have one entry per auxiliary ({dim})"
        );
        self.train_on_mats(
            Mat::from_rows(benign_scores.to_vec(), dim),
            Mat::from_rows(ae_scores.to_vec(), dim),
            kind,
        );
    }

    /// Trains the classifier from contiguous score matrices (one row per
    /// sample) — the data-plane entry point the other `train*` methods
    /// funnel into.
    ///
    /// # Panics
    ///
    /// Panics if either class is empty or a matrix width differs from the
    /// auxiliary count.
    pub fn train_on_mats(&mut self, benign_scores: Mat, ae_scores: Mat, kind: ClassifierKind) {
        assert!(!benign_scores.is_empty() && !ae_scores.is_empty(), "empty training class");
        let dim = self.n_auxiliaries();
        assert!(
            benign_scores.n_cols() == dim && ae_scores.n_cols() == dim,
            "score matrices must have one column per auxiliary ({dim})"
        );
        let data = Dataset::from_classes(benign_scores, ae_scores);
        self.classifier = Some(FittedClassifier::fit(kind, &data));
    }

    /// Whether [`train`](Self::train) (or
    /// [`train_on_scores`](Self::train_on_scores)) has run.
    pub fn is_trained(&self) -> bool {
        self.classifier.is_some()
    }

    /// Classifies a score vector with the trained classifier.
    ///
    /// # Panics
    ///
    /// Panics if the system is untrained.
    pub fn classify_scores(&self, scores: &[f64]) -> bool {
        let _span = mvp_obs::span!("detect.classify");
        let clf = self.classifier.as_ref().expect("detection system is untrained");
        clf.predict(scores) == 1
    }

    /// Completes the detection pipeline from already-computed
    /// transcriptions — the entry point for serving layers that obtained
    /// the transcriptions through their own workers (and possibly a
    /// cache).
    ///
    /// # Panics
    ///
    /// Panics if the system is untrained; see [`DetectionSystem::train`].
    pub fn detect_from_transcripts(&self, target: String, auxiliaries: Vec<String>) -> Detection {
        let scores = self.scores_from_transcripts(&target, &auxiliaries);
        Detection {
            is_adversarial: self.classify_scores(&scores),
            scores,
            target_transcription: target,
            auxiliary_transcriptions: auxiliaries,
            modality_features: Vec::new(),
            fused: false,
            early_exit: false,
        }
    }

    /// Runs the full detection pipeline on `wave`. When a fused
    /// classifier is installed, the registered modalities are scored
    /// and the fused verdict is returned (`Detection::fused` is true);
    /// otherwise the paper's similarity-only pipeline runs.
    ///
    /// # Panics
    ///
    /// Panics if the system is untrained; see [`DetectionSystem::train`]
    /// and [`DetectionSystem::train_fused`].
    pub fn detect(&self, wave: &Waveform) -> Detection {
        let _span = mvp_obs::span!("detect");
        let (target, auxiliaries) = self.transcripts(wave);
        let Some(fused) = &self.fused else {
            return self.detect_from_transcripts(target, auxiliaries);
        };
        let scores = self.scores_from_transcripts(&target, &auxiliaries);
        let modality_features: Vec<f64> =
            self.score_modalities(wave, &target).into_iter().flat_map(|o| o.features).collect();
        let mut raw = scores.clone();
        raw.extend_from_slice(&modality_features);
        Detection {
            is_adversarial: fused.is_adversarial(&raw),
            scores,
            target_transcription: target,
            auxiliary_transcriptions: auxiliaries,
            modality_features,
            fused: true,
            early_exit: false,
        }
    }
}

/// Fits the paper-configured classifier of `kind`, keeping `Send + Sync`
/// bounds (the `ClassifierKind::build` trait object deliberately does not
/// carry them). Public so serving layers can train additional classifiers
/// (e.g. per-auxiliary-subset fallbacks) with the exact configuration the
/// detection system itself uses.
pub fn fit_classifier(kind: ClassifierKind, data: &Dataset) -> Box<dyn Classifier + Send + Sync> {
    match kind {
        ClassifierKind::Svm => {
            let mut m = mvp_ml::Svm::new(mvp_ml::Kernel::Polynomial { degree: 3, coef0: 1.0 }, 1.0);
            m.fit(data);
            Box::new(m)
        }
        ClassifierKind::Knn => {
            let mut m = mvp_ml::Knn::new(10);
            m.fit(data);
            Box::new(m)
        }
        ClassifierKind::RandomForest => {
            let mut m = mvp_ml::RandomForest::new(40, 200);
            m.fit(data);
            Box::new(m)
        }
    }
}

/// Builder for [`DetectionSystem`].
#[derive(Debug)]
pub struct DetectionSystemBuilder {
    target: Arc<TrainedAsr>,
    auxiliaries: Vec<Arc<TrainedAsr>>,
    method: SimilarityMethod,
    modalities: Vec<ModalityKind>,
}

impl DetectionSystemBuilder {
    /// Adds an auxiliary ASR profile.
    pub fn auxiliary(mut self, profile: AsrProfile) -> Self {
        self.auxiliaries.push(profile.trained());
        self
    }

    /// Adds an already-trained auxiliary (e.g. a custom model).
    pub fn auxiliary_asr(mut self, asr: Arc<TrainedAsr>) -> Self {
        self.auxiliaries.push(asr);
        self
    }

    /// Adds an auxiliary at an explicit numeric precision: the PVP axis,
    /// where `DS1@int8` is a *different ensemble member* from `DS1@f64`
    /// even though both share one set of trained weights.
    pub fn auxiliary_variant(mut self, variant: mvp_asr::PrecisionVariant) -> Self {
        self.auxiliaries.push(variant.trained());
        self
    }

    /// Overrides the similarity method (default `PE_JaroWinkler`).
    pub fn method(mut self, method: SimilarityMethod) -> Self {
        self.method = method;
        self
    }

    /// Registers a detection modality (default configuration). Order of
    /// calls is registry — and fused-feature — order.
    pub fn modality(mut self, kind: ModalityKind) -> Self {
        self.modalities.push(kind);
        self
    }

    /// Registers several modalities at once, in order.
    pub fn modality_kinds(mut self, kinds: &[ModalityKind]) -> Self {
        self.modalities.extend_from_slice(kinds);
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if no auxiliary was added or a modality was registered
    /// twice.
    pub fn build(self) -> DetectionSystem {
        assert!(!self.auxiliaries.is_empty(), "at least one auxiliary ASR is required");
        DetectionSystem {
            target: self.target,
            auxiliaries: self.auxiliaries,
            method: self.method,
            classifier: None,
            modalities: ModalityRegistry::from_kinds(&self.modalities),
            fused: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_audio::synth::{SpeakerProfile, Synthesizer};
    use mvp_ml::ClassifierKind;
    use mvp_phonetics::Lexicon;

    fn ds0_ds1() -> DetectionSystem {
        DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build()
    }

    #[test]
    fn name_follows_paper_notation() {
        let s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .auxiliary(AsrProfile::Gcs)
            .build();
        assert_eq!(s.name(), "DS0+{DS1, GCS}");
    }

    #[test]
    fn benign_audio_scores_high() {
        let s = ds0_ds1();
        let synth = Synthesizer::new(16_000);
        let (wave, _) = synth.synthesize(
            &Lexicon::builtin(),
            "the man walked the street",
            &SpeakerProfile::default(),
        );
        let scores = s.score_vector(&wave);
        assert_eq!(scores.len(), 1);
        assert!(scores[0] > 0.7, "benign score {}", scores[0]);
    }

    #[test]
    fn train_on_scores_and_classify() {
        let mut s = ds0_ds1();
        assert!(!s.is_trained());
        let benign: Vec<Vec<f64>> = (0..30).map(|i| vec![0.85 + (i % 10) as f64 * 0.01]).collect();
        let aes: Vec<Vec<f64>> = (0..30).map(|i| vec![0.2 + (i % 10) as f64 * 0.01]).collect();
        s.train_on_scores(&benign, &aes, ClassifierKind::Svm);
        assert!(s.is_trained());
        assert!(s.classify_scores(&[0.1]));
        assert!(!s.classify_scores(&[0.95]));
    }

    #[test]
    fn nan_bearing_scores_yield_a_verdict_not_a_panic() {
        // Regression: a degenerate feature (NaN similarity score) must
        // degrade to *some* verdict in every classifier family — a serve
        // worker must never abort on one bad dimension.
        let mut s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .auxiliary(AsrProfile::Gcs)
            .build();
        let benign: Vec<Vec<f64>> =
            (0..30).map(|i| vec![0.85 + (i % 10) as f64 * 0.01; 2]).collect();
        let aes: Vec<Vec<f64>> = (0..30).map(|i| vec![0.2 + (i % 10) as f64 * 0.01; 2]).collect();
        for kind in ClassifierKind::ALL {
            s.train_on_scores(&benign, &aes, kind);
            let _ = s.classify_scores(&[f64::NAN, 0.9]);
            let _ = s.classify_scores(&[f64::NAN, f64::NAN]);
        }
    }

    #[test]
    fn precision_variant_auxiliary_joins_the_ensemble() {
        use mvp_asr::PrecisionVariant;
        let s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary_variant(PrecisionVariant::int8(AsrProfile::Ds0))
            .auxiliary(AsrProfile::Ds1)
            .build();
        assert_eq!(s.name(), "DS0+{DS0-I8, DS1}");
        let synth = Synthesizer::new(16_000);
        let (wave, _) =
            synth.synthesize(&Lexicon::builtin(), "open the door", &SpeakerProfile::default());
        let scores = s.score_vector(&wave);
        assert_eq!(scores.len(), 2);
        // The int8 sibling shares its parent's weights, so on benign audio
        // it is the *most* agreeing auxiliary in the ensemble.
        assert!(scores[0] > 0.8, "int8 sibling diverged on benign audio: {scores:?}");
    }

    #[test]
    #[should_panic(expected = "untrained")]
    fn detect_before_training_panics() {
        let s = ds0_ds1();
        let wave = Waveform::from_samples(vec![0.0; 1600], 16_000);
        s.detect(&wave);
    }

    #[test]
    #[should_panic(expected = "auxiliary")]
    fn builder_requires_auxiliary() {
        DetectionSystem::builder(AsrProfile::Ds0).build();
    }

    #[test]
    fn multi_aux_score_dimensions_and_training() {
        let mut s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .auxiliary(AsrProfile::Gcs)
            .auxiliary(AsrProfile::At)
            .build();
        assert_eq!(s.n_auxiliaries(), 3);
        // Three-dimensional score vectors train and classify.
        let benign: Vec<Vec<f64>> =
            (0..20).map(|i| vec![0.9, 0.92, 0.88 + (i % 5) as f64 * 0.01]).collect();
        let aes: Vec<Vec<f64>> =
            (0..20).map(|i| vec![0.3, 0.25 + (i % 5) as f64 * 0.01, 0.4]).collect();
        for kind in ClassifierKind::ALL {
            s.train_on_scores(&benign, &aes, kind);
            assert!(s.classify_scores(&[0.2, 0.3, 0.35]), "{kind}");
            assert!(!s.classify_scores(&[0.95, 0.9, 0.93]), "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "one entry per auxiliary")]
    fn wrong_score_dimension_rejected() {
        let mut s = ds0_ds1();
        s.train_on_scores(&[vec![0.9, 0.8]], &[vec![0.1, 0.2]], ClassifierKind::Svm);
    }

    #[test]
    fn method_override_changes_scores() {
        use mvp_textsim::Similarity;
        let jaccard =
            crate::similarity::SimilarityMethod { base: Similarity::Jaccard, phonetic: None };
        let s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .method(jaccard)
            .build();
        assert_eq!(s.method().name(), "Jaccard");
        let scores = s.scores_from_transcripts("open the door", &["close the door".to_string()]);
        assert!((scores[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn transcribe_all_serial_matches_threaded() {
        let s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .auxiliary(AsrProfile::Gcs)
            .build();
        let synth = Synthesizer::new(16_000);
        let (wave, _) =
            synth.synthesize(&Lexicon::builtin(), "turn on the light", &SpeakerProfile::default());
        // A caller-provided serial runner must agree with the
        // thread-per-call wrapper.
        let serial =
            s.transcribe_all(&wave, |asrs, w| asrs.iter().map(|a| a.transcribe(w)).collect());
        assert_eq!(serial, s.transcripts(&wave));
    }

    #[test]
    fn recognizers_order_is_target_first() {
        let s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .auxiliary(AsrProfile::At)
            .build();
        let names: Vec<String> = s.recognizers().iter().map(|a| a.name().to_string()).collect();
        assert_eq!(names, ["DS0", "DS1", "AT"]);
        assert_eq!(s.n_recognizers(), 3);
    }

    #[test]
    #[should_panic(expected = "one transcription per recogniser")]
    fn transcribe_all_rejects_short_runner_output() {
        let s = ds0_ds1();
        let wave = Waveform::from_samples(vec![0.0; 160], 16_000);
        s.transcribe_all(&wave, |_, _| vec!["only one".to_string()]);
    }

    #[test]
    fn detect_from_transcripts_matches_detect_shape() {
        let mut s = ds0_ds1();
        let benign: Vec<Vec<f64>> = (0..30).map(|i| vec![0.85 + (i % 10) as f64 * 0.01]).collect();
        let aes: Vec<Vec<f64>> = (0..30).map(|i| vec![0.2 + (i % 10) as f64 * 0.01]).collect();
        s.train_on_scores(&benign, &aes, ClassifierKind::Svm);
        let d = s.detect_from_transcripts(
            "open the door".to_string(),
            vec!["open the door".to_string()],
        );
        assert!(!d.is_adversarial);
        assert_eq!(d.scores.len(), 1);
        let d2 = s.detect_from_transcripts(
            "open the door".to_string(),
            vec!["completely unrelated words here".to_string()],
        );
        assert!(d2.is_adversarial);
    }

    #[test]
    fn builder_registers_modalities_in_order() {
        let s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .modality(mvp_modality::ModalityKind::Distribution)
            .modality(mvp_modality::ModalityKind::Transform)
            .build();
        assert_eq!(
            s.modalities().kinds(),
            vec![mvp_modality::ModalityKind::Distribution, mvp_modality::ModalityKind::Transform]
        );
        let layout = s.fusion_layout().unwrap();
        assert_eq!(layout.n_similarity(), 1);
        assert!(!s.is_fused());
    }

    #[test]
    fn similarity_only_system_has_no_fusion_layout() {
        assert!(ds0_ds1().fusion_layout().is_none());
    }

    #[test]
    fn fused_training_and_detection() {
        use mvp_modality::ModalityKind;
        let synth = Synthesizer::new(16_000);
        let lexicon = Lexicon::builtin();
        let sentences =
            ["the man walked the street", "turn on the light", "good morning", "open the door"];
        let benign: Vec<Waveform> = sentences
            .iter()
            .map(|s| synth.synthesize(&lexicon, s, &SpeakerProfile::default()).0)
            .collect();
        // Stand-in AEs: loud white noise transcribes unstably and
        // disagrees across ASRs, which is all the fit needs here.
        let adversarial: Vec<Waveform> =
            (0..4).map(|i| mvp_audio::NoiseKind::White.generate(16_000, 16_000, 7 + i)).collect();

        let mut s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .modality_kinds(&ModalityKind::ALL)
            .build();
        s.train_fused(&benign, &adversarial, ClassifierKind::Svm);
        assert!(s.is_fused());
        let layout = s.fusion_layout().unwrap();
        assert_eq!(s.fused_classifier().unwrap().layout(), &layout);
        // Instability is registered, so the benign-only scorer fitted.
        assert!(s.fused_classifier().unwrap().one_class().is_some());

        let d = s.detect(&benign[0]);
        assert!(d.fused);
        assert_eq!(d.modality_features.len(), layout.raw_dim() - layout.n_similarity());
        assert!(!d.is_adversarial, "benign audio flagged by fused detector");
    }

    #[test]
    #[should_panic(expected = "no modalities registered")]
    fn train_fused_requires_modalities() {
        let mut s = ds0_ds1();
        let wave = Waveform::from_samples(vec![0.0; 160], 16_000);
        s.train_fused(&[wave.clone()], &[wave], ClassifierKind::Svm);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_fused_classifier_rejected() {
        use mvp_modality::ModalityKind;
        let mk = |kinds: &[ModalityKind]| {
            DetectionSystem::builder(AsrProfile::Ds0)
                .auxiliary(AsrProfile::Ds1)
                .modality_kinds(kinds)
                .build()
        };
        let mut donor = mk(&[ModalityKind::Transform]);
        let dim = donor.fusion_layout().unwrap().raw_dim();
        let rows = |base: f64| {
            Mat::from_rows((0..10).map(|i| vec![base + (i % 5) as f64 * 0.01; dim]).collect(), dim)
        };
        donor.train_fused_on_mats(rows(0.9), rows(0.2), ClassifierKind::Svm);
        let fused = donor.fused_classifier().unwrap().clone();
        mk(&[ModalityKind::Distribution]).set_fused_classifier(fused);
    }

    #[test]
    fn parallel_transcripts_ordered() {
        let s = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .auxiliary(AsrProfile::Gcs)
            .build();
        let synth = Synthesizer::new(16_000);
        let (wave, _) =
            synth.synthesize(&Lexicon::builtin(), "good morning", &SpeakerProfile::default());
        let (target, aux) = s.transcripts(&wave);
        assert_eq!(aux.len(), 2);
        // Deterministic across calls (ordering is by ASR index, not thread
        // completion).
        let (t2, a2) = s.transcripts(&wave);
        assert_eq!(target, t2);
        assert_eq!(aux, a2);
    }
}
