//! The similarity-calculation component (paper §IV-C).
//!
//! A method is a base string-similarity measure optionally preceded by a
//! phonetic encoding of both transcriptions. Table III ablates six
//! combinations and selects `PE_JaroWinkler`, which this module exposes as
//! the default.

use mvp_phonetics::{Encoder, PhoneticEncoder};
use mvp_textsim::Similarity;

/// A transcription-similarity method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimilarityMethod {
    /// Base string-similarity measure.
    pub base: Similarity,
    /// Optional phonetic pre-encoding.
    pub phonetic: Option<Encoder>,
}

impl Default for SimilarityMethod {
    /// `PE_JaroWinkler` — the method the paper adopts.
    fn default() -> Self {
        SimilarityMethod { base: Similarity::JaroWinkler, phonetic: Some(Encoder::Metaphone) }
    }
}

impl SimilarityMethod {
    /// The six combinations of the paper's Table III, in table order.
    pub fn paper_methods() -> Vec<SimilarityMethod> {
        let bases = [Similarity::Cosine, Similarity::Jaccard, Similarity::JaroWinkler];
        let mut out = Vec::with_capacity(6);
        for base in bases {
            out.push(SimilarityMethod { base, phonetic: None });
        }
        for base in bases {
            out.push(SimilarityMethod { base, phonetic: Some(Encoder::Metaphone) });
        }
        out
    }

    /// Similarity of two transcriptions in `[0, 1]`.
    ///
    /// ```
    /// use mvp_ears::SimilarityMethod;
    /// let m = SimilarityMethod::default();
    /// // Homophone substitutions are forgiven by the phonetic encoding.
    /// assert_eq!(m.score("i see the sea", "i sea the see"), 1.0);
    /// assert!(m.score("open the front door", "i wish you wouldn't") < 0.7);
    /// ```
    pub fn score(&self, a: &str, b: &str) -> f64 {
        match self.phonetic {
            Some(enc) => {
                let (ea, eb) = {
                    let _span = mvp_obs::span!("similarity.phonetic_encode");
                    (enc.encode_sentence(a), enc.encode_sentence(b))
                };
                self.base.score(&ea, &eb)
            }
            None => self.base.score(&a.to_lowercase(), &b.to_lowercase()),
        }
    }

    /// Table-style name, e.g. `"PE_JaroWinkler"`.
    pub fn name(&self) -> String {
        match self.phonetic {
            Some(_) => format!("PE_{}", self.base.name()),
            None => self.base.name().to_string(),
        }
    }
}

impl std::fmt::Display for SimilarityMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_methods_cover_table_three() {
        let methods = SimilarityMethod::paper_methods();
        assert_eq!(methods.len(), 6);
        let names: Vec<String> = methods.iter().map(SimilarityMethod::name).collect();
        assert_eq!(
            names,
            ["Cosine", "Jaccard", "JaroWinkler", "PE_Cosine", "PE_Jaccard", "PE_JaroWinkler"]
        );
    }

    #[test]
    fn phonetic_encoding_helps_homophones() {
        let raw = SimilarityMethod { base: Similarity::Jaccard, phonetic: None };
        let pe = SimilarityMethod { base: Similarity::Jaccard, phonetic: Some(Encoder::Metaphone) };
        // Token sets differ ("there" vs "their") but pronunciations match.
        let a = "they went there";
        let b = "they went their";
        assert!(pe.score(a, b) > raw.score(a, b));
        assert_eq!(pe.score(a, b), 1.0);
    }

    #[test]
    fn identical_texts_score_one() {
        for m in SimilarityMethod::paper_methods() {
            assert_eq!(m.score("open the door", "open the door"), 1.0, "{m}");
        }
    }

    #[test]
    fn dissimilar_texts_score_low() {
        let m = SimilarityMethod::default();
        assert!(m.score("a sight for sore eyes", "i wish you wouldn't") < 0.75);
    }

    #[test]
    fn case_insensitive_without_encoding() {
        let m = SimilarityMethod { base: Similarity::JaroWinkler, phonetic: None };
        assert_eq!(m.score("Open The Door", "open the door"), 1.0);
    }
}
