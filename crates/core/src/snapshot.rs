//! Whole-system checkpointing: a [`DetectionSystemSnapshot`] captures every
//! trained component of a [`DetectionSystem`] — target ASR, auxiliaries,
//! similarity method and the fitted classifier — as one artifact, so a
//! serving process can warm-start with verdicts bit-identical to the
//! process that trained it.

use std::sync::Arc;

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};
use mvp_asr::TrainedAsr;
use mvp_ml::FittedClassifier;
use mvp_modality::ModalityKind;
use mvp_phonetics::Encoder as PhoneticEncoder;
use mvp_textsim::Similarity;

use crate::fusion::FusedClassifier;
use crate::similarity::SimilarityMethod;
use crate::system::DetectionSystem;

/// A point-in-time copy of a detection system's trained state.
///
/// Capture with [`capture`](Self::capture), persist through
/// [`Persist`], and rebuild a working system with
/// [`restore`](Self::restore).
#[derive(Debug)]
pub struct DetectionSystemSnapshot {
    target: Arc<TrainedAsr>,
    auxiliaries: Vec<Arc<TrainedAsr>>,
    method: SimilarityMethod,
    classifier: Option<FittedClassifier>,
    modalities: Vec<ModalityKind>,
    fused: Option<FusedClassifier>,
}

fn base_tag(s: Similarity) -> u8 {
    match s {
        Similarity::Cosine => 0,
        Similarity::Jaccard => 1,
        Similarity::JaroWinkler => 2,
        Similarity::Levenshtein => 3,
        Similarity::Dice => 4,
    }
}

fn base_from_tag(tag: u8) -> Result<Similarity, ArtifactError> {
    Ok(match tag {
        0 => Similarity::Cosine,
        1 => Similarity::Jaccard,
        2 => Similarity::JaroWinkler,
        3 => Similarity::Levenshtein,
        4 => Similarity::Dice,
        other => {
            return Err(ArtifactError::SchemaMismatch(format!("similarity tag {other}")));
        }
    })
}

fn phonetic_tag(p: Option<PhoneticEncoder>) -> u8 {
    match p {
        None => 0,
        Some(PhoneticEncoder::Metaphone) => 1,
        Some(PhoneticEncoder::Soundex) => 2,
        Some(PhoneticEncoder::RefinedSoundex) => 3,
        Some(PhoneticEncoder::Nysiis) => 4,
    }
}

fn phonetic_from_tag(tag: u8) -> Result<Option<PhoneticEncoder>, ArtifactError> {
    Ok(match tag {
        0 => None,
        1 => Some(PhoneticEncoder::Metaphone),
        2 => Some(PhoneticEncoder::Soundex),
        3 => Some(PhoneticEncoder::RefinedSoundex),
        4 => Some(PhoneticEncoder::Nysiis),
        other => {
            return Err(ArtifactError::SchemaMismatch(format!("phonetic tag {other}")));
        }
    })
}

impl DetectionSystemSnapshot {
    /// Captures `system`'s trained state. The ASR models are shared (the
    /// snapshot holds the same `Arc`s), the classifier is cloned.
    pub fn capture(system: &DetectionSystem) -> DetectionSystemSnapshot {
        let mut recognizers = system.recognizers();
        let auxiliaries = recognizers.split_off(1);
        let target = recognizers.pop().expect("target recogniser present");
        DetectionSystemSnapshot {
            target,
            auxiliaries,
            method: system.method(),
            classifier: system.classifier().cloned(),
            modalities: system.modalities().kinds(),
            fused: system.fused_classifier().cloned(),
        }
    }

    /// Rebuilds a working detection system from the snapshot.
    pub fn restore(self) -> DetectionSystem {
        let mut builder = DetectionSystem::builder_for(self.target)
            .method(self.method)
            .modality_kinds(&self.modalities);
        for aux in self.auxiliaries {
            builder = builder.auxiliary_asr(aux);
        }
        let mut system = builder.build();
        if let Some(classifier) = self.classifier {
            system.set_classifier(classifier);
        }
        if let Some(fused) = self.fused {
            system.set_fused_classifier(fused);
        }
        system
    }

    /// The paper-notation name of the system this snapshot restores to.
    pub fn name(&self) -> String {
        format!(
            "{}+{{{}}}",
            mvp_asr::Asr::name(&*self.target),
            self.auxiliaries
                .iter()
                .map(|a| mvp_asr::Asr::name(&**a))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }

    /// Whether the snapshot carries a fitted classifier.
    pub fn is_trained(&self) -> bool {
        self.classifier.is_some()
    }

    /// The modality kinds the restored system will register, in order.
    pub fn modalities(&self) -> &[ModalityKind] {
        &self.modalities
    }

    /// Whether the snapshot carries a fused classifier.
    pub fn is_fused(&self) -> bool {
        self.fused.is_some()
    }
}

impl Persist for DetectionSystemSnapshot {
    const KIND: ArtifactKind = ArtifactKind::DETECTION_SNAPSHOT;
    // v2 appended the modality-kind list and the optional fused
    // classifier to the v1 layout.
    const SCHEMA_VERSION: u16 = 2;

    fn encode(&self, enc: &mut Encoder) {
        self.target.encode(enc);
        enc.put_usize(self.auxiliaries.len());
        for aux in &self.auxiliaries {
            aux.encode(enc);
        }
        enc.put_u8(base_tag(self.method.base));
        enc.put_u8(phonetic_tag(self.method.phonetic));
        enc.put_bool(self.classifier.is_some());
        if let Some(classifier) = &self.classifier {
            classifier.encode(enc);
        }
        enc.put_usize(self.modalities.len());
        for kind in &self.modalities {
            enc.put_u8(kind.tag());
        }
        enc.put_bool(self.fused.is_some());
        if let Some(fused) = &self.fused {
            fused.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let target = Arc::new(TrainedAsr::decode(dec)?);
        let n_aux = dec.usize()?;
        if n_aux == 0 {
            return Err(ArtifactError::SchemaMismatch("snapshot with no auxiliaries".into()));
        }
        let auxiliaries = (0..n_aux)
            .map(|_| TrainedAsr::decode(dec).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        let method = SimilarityMethod {
            base: base_from_tag(dec.u8()?)?,
            phonetic: phonetic_from_tag(dec.u8()?)?,
        };
        let classifier = if dec.bool()? { Some(FittedClassifier::decode(dec)?) } else { None };
        let n_modalities = dec.usize()?;
        let mut modalities = Vec::with_capacity(n_modalities);
        for _ in 0..n_modalities {
            let tag = dec.u8()?;
            let kind = ModalityKind::from_tag(tag)
                .ok_or_else(|| ArtifactError::SchemaMismatch(format!("modality tag {tag}")))?;
            if modalities.contains(&kind) {
                return Err(ArtifactError::SchemaMismatch(format!(
                    "modality {kind} appears twice in snapshot"
                )));
            }
            modalities.push(kind);
        }
        let fused = if dec.bool()? { Some(FusedClassifier::decode(dec)?) } else { None };
        if fused.is_some() && modalities.is_empty() {
            return Err(ArtifactError::SchemaMismatch(
                "fused classifier without registered modalities".into(),
            ));
        }
        Ok(DetectionSystemSnapshot { target, auxiliaries, method, classifier, modalities, fused })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::AsrProfile;
    use mvp_ml::ClassifierKind;

    fn trained_system() -> DetectionSystem {
        let mut system =
            DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
        let benign: Vec<Vec<f64>> = (0..30).map(|i| vec![0.85 + (i % 10) as f64 * 0.01]).collect();
        let aes: Vec<Vec<f64>> = (0..30).map(|i| vec![0.2 + (i % 10) as f64 * 0.01]).collect();
        system.train_on_scores(&benign, &aes, ClassifierKind::Svm);
        system
    }

    #[test]
    fn snapshot_round_trips_with_identical_verdicts() {
        let system = trained_system();
        let snap = DetectionSystemSnapshot::capture(&system);
        assert!(snap.is_trained());
        assert_eq!(snap.name(), system.name());

        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let restored = DetectionSystemSnapshot::read_from(&bytes[..]).unwrap().restore();

        assert_eq!(restored.name(), system.name());
        assert_eq!(restored.method(), system.method());
        assert!(restored.is_trained());
        for s in [0.05, 0.2, 0.5, 0.8, 0.95] {
            assert_eq!(restored.classify_scores(&[s]), system.classify_scores(&[s]), "score {s}");
        }
        let d1 = system.detect_from_transcripts(
            "open the door".to_string(),
            vec!["open the door".to_string()],
        );
        let d2 = restored.detect_from_transcripts(
            "open the door".to_string(),
            vec!["open the door".to_string()],
        );
        assert_eq!(d1.is_adversarial, d2.is_adversarial);
        assert_eq!(d1.scores, d2.scores);
    }

    #[test]
    fn restored_asrs_transcribe_identically() {
        use mvp_audio::synth::{SpeakerProfile, Synthesizer};
        use mvp_phonetics::Lexicon;
        let system = trained_system();
        let mut bytes = Vec::new();
        DetectionSystemSnapshot::capture(&system).write_to(&mut bytes).unwrap();
        let restored = DetectionSystemSnapshot::read_from(&bytes[..]).unwrap().restore();
        let synth = Synthesizer::new(16_000);
        let (wave, _) =
            synth.synthesize(&Lexicon::builtin(), "turn off the light", &SpeakerProfile::default());
        assert_eq!(restored.transcripts(&wave), system.transcripts(&wave));
    }

    #[test]
    fn untrained_snapshot_restores_untrained() {
        let system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
        let snap = DetectionSystemSnapshot::capture(&system);
        assert!(!snap.is_trained());
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let restored = DetectionSystemSnapshot::read_from(&bytes[..]).unwrap().restore();
        assert!(!restored.is_trained());
        assert_eq!(restored.n_auxiliaries(), 1);
    }

    #[test]
    fn fused_snapshot_round_trips() {
        use mvp_ml::Mat;
        use mvp_modality::ModalityKind;
        let mut system = DetectionSystem::builder(AsrProfile::Ds0)
            .auxiliary(AsrProfile::Ds1)
            .modality_kinds(&ModalityKind::ALL)
            .build();
        let dim = system.fusion_layout().unwrap().raw_dim();
        let rows = |base: f64| {
            Mat::from_rows((0..20).map(|i| vec![base + (i % 7) as f64 * 0.01; dim]).collect(), dim)
        };
        system.train_fused_on_mats(rows(0.88), rows(0.2), ClassifierKind::Svm);

        let snap = DetectionSystemSnapshot::capture(&system);
        assert!(snap.is_fused());
        assert_eq!(snap.modalities(), &ModalityKind::ALL);
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).unwrap();
        let restored = DetectionSystemSnapshot::read_from(&bytes[..]).unwrap().restore();

        assert!(restored.is_fused());
        assert_eq!(restored.modalities().kinds(), system.modalities().kinds());
        let (orig, rest) =
            (system.fused_classifier().unwrap(), restored.fused_classifier().unwrap());
        assert_eq!(orig.layout(), rest.layout());
        for base in [0.1, 0.4, 0.6, 0.9] {
            let row = vec![base; dim];
            assert_eq!(orig.is_adversarial(&row), rest.is_adversarial(&row), "base {base}");
            assert_eq!(orig.augment(&row), rest.augment(&row), "base {base}");
        }
    }

    #[test]
    fn corrupted_snapshot_is_refused() {
        let system = trained_system();
        let mut bytes = Vec::new();
        DetectionSystemSnapshot::capture(&system).write_to(&mut bytes).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        assert!(DetectionSystemSnapshot::read_from(&bytes[..]).is_err());
    }

    #[test]
    fn serialization_is_deterministic() {
        let system = trained_system();
        let mut a = Vec::new();
        let mut b = Vec::new();
        DetectionSystemSnapshot::capture(&system).write_to(&mut a).unwrap();
        DetectionSystemSnapshot::capture(&system).write_to(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn method_tags_round_trip_every_combination() {
        let bases = [
            Similarity::Cosine,
            Similarity::Jaccard,
            Similarity::JaroWinkler,
            Similarity::Levenshtein,
            Similarity::Dice,
        ];
        let phonetics = [
            None,
            Some(PhoneticEncoder::Metaphone),
            Some(PhoneticEncoder::Soundex),
            Some(PhoneticEncoder::RefinedSoundex),
            Some(PhoneticEncoder::Nysiis),
        ];
        for base in bases {
            assert_eq!(base_from_tag(base_tag(base)).unwrap(), base);
        }
        for phonetic in phonetics {
            assert_eq!(phonetic_from_tag(phonetic_tag(phonetic)).unwrap(), phonetic);
        }
        assert!(matches!(base_from_tag(5), Err(ArtifactError::SchemaMismatch(_))));
        assert!(matches!(phonetic_from_tag(5), Err(ArtifactError::SchemaMismatch(_))));
    }
}
