//! Benign-only threshold detection (paper §V-G).
//!
//! Single-auxiliary systems can detect unseen-attack AEs without any AE
//! training data: pick the largest similarity threshold whose false-positive
//! rate on *benign* scores stays under a budget (the paper uses 5 %), then
//! flag anything scoring below it.

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};

/// A scalar-score threshold detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdDetector {
    threshold: f64,
    fpr: f64,
}

impl ThresholdDetector {
    /// Fits the threshold on benign similarity scores so that the training
    /// FPR stays strictly below `max_fpr`.
    ///
    /// # Panics
    ///
    /// Panics if `benign_scores` is empty or `max_fpr` is outside `(0, 1)`.
    pub fn fit_benign(benign_scores: &[f64], max_fpr: f64) -> ThresholdDetector {
        let _span = mvp_obs::span!("threshold.fit");
        assert!(!benign_scores.is_empty(), "no benign scores");
        assert!(max_fpr > 0.0 && max_fpr < 1.0, "FPR budget out of range");
        let mut sorted = benign_scores.to_vec();
        // total_cmp: a NaN benign score (degenerate transcript pair) sorts
        // past every finite score and cannot become the threshold below,
        // because `fpr < max_fpr` stops the scan before the tail.
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        // Flagging rule is `score < threshold`; find the largest candidate
        // threshold keeping the benign flag rate under budget. Candidate
        // thresholds are the observed scores themselves.
        let mut best = sorted[0]; // flags nothing that scores >= min
        let mut best_fpr = 0.0;
        for (k, &t) in sorted.iter().enumerate() {
            // Scores strictly below t: exactly k of them (ties collapse).
            let fpr = k as f64 / n as f64;
            if fpr < max_fpr {
                best = t;
                best_fpr = sorted.iter().filter(|&&s| s < t).count() as f64 / n as f64;
            } else {
                break;
            }
        }
        ThresholdDetector { threshold: best, fpr: best_fpr }
    }

    /// The fitted threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The training-set FPR at the fitted threshold.
    pub fn training_fpr(&self) -> f64 {
        self.fpr
    }

    /// Whether a similarity score is flagged as adversarial.
    pub fn is_adversarial(&self, score: f64) -> bool {
        score < self.threshold
    }

    /// Defense rate over a set of AE scores (fraction flagged).
    pub fn defense_rate(&self, ae_scores: &[f64]) -> f64 {
        if ae_scores.is_empty() {
            return 0.0;
        }
        ae_scores.iter().filter(|&&s| self.is_adversarial(s)).count() as f64
            / ae_scores.len() as f64
    }
}

impl Persist for ThresholdDetector {
    const KIND: ArtifactKind = ArtifactKind::THRESHOLD_DETECTOR;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.threshold);
        enc.put_f64(self.fpr);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let threshold = dec.f64()?;
        let fpr = dec.f64()?;
        if !(0.0..1.0).contains(&fpr) {
            return Err(ArtifactError::SchemaMismatch(format!("training FPR {fpr}")));
        }
        Ok(ThresholdDetector { threshold, fpr })
    }
}

/// A bank of per-auxiliary threshold detectors, persisted as one artifact
/// (the `detect_wav` CLI stores one per auxiliary ASR).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThresholdBank(pub Vec<ThresholdDetector>);

impl ThresholdBank {
    /// The detectors, in auxiliary order.
    pub fn detectors(&self) -> &[ThresholdDetector] {
        &self.0
    }
}

impl From<Vec<ThresholdDetector>> for ThresholdBank {
    fn from(detectors: Vec<ThresholdDetector>) -> ThresholdBank {
        ThresholdBank(detectors)
    }
}

impl Persist for ThresholdBank {
    const KIND: ArtifactKind = ArtifactKind::THRESHOLD_BANK;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.0.len());
        for det in &self.0 {
            det.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let n = dec.usize()?;
        (0..n)
            .map(|_| ThresholdDetector::decode(dec))
            .collect::<Result<Vec<_>, _>>()
            .map(ThresholdBank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign_scores() -> Vec<f64> {
        // 95 high scores and 5 stragglers.
        let mut v: Vec<f64> = (0..95).map(|i| 0.85 + (i % 10) as f64 * 0.01).collect();
        v.extend([0.55, 0.6, 0.65, 0.7, 0.75]);
        v
    }

    #[test]
    fn threshold_keeps_fpr_under_budget() {
        let scores = benign_scores();
        let det = ThresholdDetector::fit_benign(&scores, 0.05);
        let fpr =
            scores.iter().filter(|&&s| det.is_adversarial(s)).count() as f64 / scores.len() as f64;
        assert!(fpr < 0.05, "fpr {fpr}");
        assert_eq!(det.training_fpr(), fpr);
    }

    #[test]
    fn catches_low_scoring_aes() {
        let det = ThresholdDetector::fit_benign(&benign_scores(), 0.05);
        let aes = [0.05, 0.1, 0.2, 0.3, 0.15];
        assert_eq!(det.defense_rate(&aes), 1.0);
    }

    #[test]
    fn tight_budget_lowers_threshold() {
        let scores = benign_scores();
        let tight = ThresholdDetector::fit_benign(&scores, 0.01);
        let loose = ThresholdDetector::fit_benign(&scores, 0.2);
        assert!(tight.threshold() <= loose.threshold());
    }

    #[test]
    fn all_identical_scores() {
        let det = ThresholdDetector::fit_benign(&[0.9; 50], 0.05);
        assert!(!det.is_adversarial(0.9));
        assert!(det.is_adversarial(0.2));
        assert_eq!(det.training_fpr(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no benign")]
    fn empty_scores_rejected() {
        ThresholdDetector::fit_benign(&[], 0.05);
    }

    #[test]
    fn nan_benign_score_cannot_become_the_threshold() {
        let mut scores = benign_scores();
        scores.push(f64::NAN);
        let det = ThresholdDetector::fit_benign(&scores, 0.05);
        assert!(det.threshold().is_finite(), "threshold {}", det.threshold());
        // A NaN *query* score degrades to benign (`NaN < t` is false)
        // rather than panicking anywhere downstream.
        assert!(!det.is_adversarial(f64::NAN));
    }

    #[test]
    fn detector_round_trips_bit_exactly() {
        let det = ThresholdDetector::fit_benign(&benign_scores(), 0.05);
        let mut bytes = Vec::new();
        det.write_to(&mut bytes).unwrap();
        let loaded = ThresholdDetector::read_from(&bytes[..]).unwrap();
        assert_eq!(loaded, det);
        assert_eq!(loaded.threshold().to_bits(), det.threshold().to_bits());
        assert_eq!(loaded.training_fpr().to_bits(), det.training_fpr().to_bits());
    }

    #[test]
    fn bank_round_trips_and_rejects_corruption() {
        let scores = benign_scores();
        let bank = ThresholdBank(vec![
            ThresholdDetector::fit_benign(&scores, 0.05),
            ThresholdDetector::fit_benign(&scores, 0.01),
            ThresholdDetector::fit_benign(&scores, 0.2),
        ]);
        let mut bytes = Vec::new();
        bank.write_to(&mut bytes).unwrap();
        assert_eq!(ThresholdBank::read_from(&bytes[..]).unwrap(), bank);
        // Any single-byte corruption is refused.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(ThresholdBank::read_from(&bytes[..]).is_err());
    }

    #[test]
    fn empty_bank_is_legal() {
        let mut bytes = Vec::new();
        ThresholdBank::default().write_to(&mut bytes).unwrap();
        assert!(ThresholdBank::read_from(&bytes[..]).unwrap().detectors().is_empty());
    }

    #[test]
    fn absurd_fpr_is_refused() {
        // Hand-frame a payload with an out-of-range training FPR: the
        // checksum is valid, so only the schema check can catch it.
        let mut enc = mvp_artifact::Encoder::new();
        enc.put_f64(0.5);
        enc.put_f64(1.5);
        let mut bytes = Vec::new();
        mvp_artifact::write_artifact(
            &mut bytes,
            ThresholdDetector::KIND,
            ThresholdDetector::SCHEMA_VERSION,
            enc.as_bytes(),
        )
        .unwrap();
        assert!(matches!(
            ThresholdDetector::read_from(&bytes[..]),
            Err(ArtifactError::SchemaMismatch(_))
        ));
    }
}
