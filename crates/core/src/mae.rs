//! Hypothetical multiple-ASR-effective (MAE) AEs and proactive training
//! (paper §V-H).
//!
//! No method exists for generating transferable audio AEs, so the paper
//! synthesizes them *at the feature-vector level*: if a hypothetical AE
//! fools the target and auxiliary `i`, its `i`-th similarity score is drawn
//! from the benign pool (the AE behaves like a benign sample for that
//! model pair); for every auxiliary it cannot fool, the score is drawn
//! from the attack pool. A detector trained on such vectors stays
//! effective against transferable AEs before any exist.

use mvp_ml::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::eval::ScorePools;

/// The six MAE AE types of the paper's Table IX, defined by which
/// auxiliaries (of DS1, GCS, AT — in that feature order) the hypothetical
/// AE fools in addition to the target DS0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaeType {
    /// `AE(DS0, DS1)`.
    Type1,
    /// `AE(DS0, GCS)`.
    Type2,
    /// `AE(DS0, AT)`.
    Type3,
    /// `AE(DS0, DS1, GCS)`.
    Type4,
    /// `AE(DS0, DS1, AT)`.
    Type5,
    /// `AE(DS0, GCS, AT)`.
    Type6,
}

impl MaeType {
    /// All six types in table order.
    pub const ALL: [MaeType; 6] = [
        MaeType::Type1,
        MaeType::Type2,
        MaeType::Type3,
        MaeType::Type4,
        MaeType::Type5,
        MaeType::Type6,
    ];

    /// Which of the three auxiliaries (DS1, GCS, AT) this type fools.
    pub fn fooled_mask(self) -> [bool; 3] {
        match self {
            MaeType::Type1 => [true, false, false],
            MaeType::Type2 => [false, true, false],
            MaeType::Type3 => [false, false, true],
            MaeType::Type4 => [true, true, false],
            MaeType::Type5 => [true, false, true],
            MaeType::Type6 => [false, true, true],
        }
    }

    /// Paper-style name, e.g. `"AE(DS0,DS1,GCS)"`.
    pub fn name(self) -> &'static str {
        match self {
            MaeType::Type1 => "AE(DS0,DS1)",
            MaeType::Type2 => "AE(DS0,GCS)",
            MaeType::Type3 => "AE(DS0,AT)",
            MaeType::Type4 => "AE(DS0,DS1,GCS)",
            MaeType::Type5 => "AE(DS0,DS1,AT)",
            MaeType::Type6 => "AE(DS0,GCS,AT)",
        }
    }

    /// Whether every auxiliary this type fools is also fooled by `other`
    /// (the Λ′ ⊆ Λ condition of the paper's Table XI analysis).
    pub fn is_subset_of(self, other: MaeType) -> bool {
        self.fooled_mask().iter().zip(other.fooled_mask()).all(|(&a, b)| !a || b)
    }
}

impl std::fmt::Display for MaeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Synthesizes `count` MAE feature vectors (one [`Mat`] row per vector):
/// per auxiliary `i`, fooled positions draw from that auxiliary's benign
/// score pool and resisting positions from its attack pool.
///
/// `fooled` must have one entry per auxiliary of `pools`.
///
/// # Panics
///
/// Panics if the mask length mismatches the pools or any needed pool is
/// empty.
pub fn synthesize_mae(pools: &ScorePools, fooled: &[bool], count: usize, seed: u64) -> Mat {
    assert_eq!(fooled.len(), pools.n_auxiliaries(), "mask/auxiliary mismatch");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4D41_4541); // "MAEA"
    let mut out = Mat::zeros(count, fooled.len());
    for v in 0..count {
        let row = out.row_mut(v);
        for (i, &is_fooled) in fooled.iter().enumerate() {
            let pool = if is_fooled { pools.benign(i) } else { pools.attack(i) };
            assert!(!pool.is_empty(), "empty score pool for auxiliary {i}");
            row[i] = pool[rng.gen_range(0..pool.len())];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> ScorePools {
        // Three auxiliaries, benign scores high, attack scores low.
        let benign = vec![vec![0.9, 0.91, 0.92], vec![0.85, 0.88, 0.9], vec![0.95, 0.96, 0.9]];
        let attack = vec![vec![0.1, 0.12, 0.15], vec![0.2, 0.18, 0.22], vec![0.05, 0.1, 0.12]];
        ScorePools::new(Mat::from_rows(benign, 3), Mat::from_rows(attack, 3))
    }

    #[test]
    fn fooled_positions_draw_from_benign_pool() {
        let p = pools();
        let vecs = synthesize_mae(&p, &MaeType::Type4.fooled_mask(), 50, 7);
        assert_eq!(vecs.n_rows(), 50);
        for v in vecs.rows() {
            assert!(v[0] > 0.8, "DS1 fooled -> benign-like: {v:?}");
            assert!(v[1] > 0.8, "GCS fooled -> benign-like: {v:?}");
            assert!(v[2] < 0.3, "AT resists -> attack-like: {v:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = pools();
        let a = synthesize_mae(&p, &[true, false, false], 10, 3);
        let b = synthesize_mae(&p, &[true, false, false], 10, 3);
        assert_eq!(a, b);
        let c = synthesize_mae(&p, &[true, false, false], 10, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn subset_relation_matches_table_eleven() {
        use MaeType::*;
        assert!(Type1.is_subset_of(Type4)); // {DS1} ⊆ {DS1, GCS}
        assert!(Type1.is_subset_of(Type5));
        assert!(!Type1.is_subset_of(Type6)); // DS1 ∉ {GCS, AT}
        assert!(Type2.is_subset_of(Type6));
        assert!(!Type4.is_subset_of(Type1));
        for t in MaeType::ALL {
            assert!(t.is_subset_of(t));
        }
    }

    #[test]
    fn names_and_masks_consistent() {
        for t in MaeType::ALL {
            let fooled_count = t.fooled_mask().iter().filter(|&&b| b).count();
            // Types 1-3 fool one auxiliary; 4-6 fool two.
            let expected =
                if matches!(t, MaeType::Type1 | MaeType::Type2 | MaeType::Type3) { 1 } else { 2 };
            assert_eq!(fooled_count, expected, "{t}");
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_mask_length_rejected() {
        synthesize_mae(&pools(), &[true], 1, 0);
    }
}
