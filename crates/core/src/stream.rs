//! Incremental detection: the verdict forms *while audio arrives*.
//!
//! A [`DetectionStream`] holds one streaming recogniser state per ASR
//! (target first) and advances all of them on every chunk. With an
//! [`EarlyExit`] rule installed it re-scores the running transcripts after
//! each chunk and fires an `Adversarial` verdict as soon as cross-ASR
//! similarity collapses below a margin-adjusted threshold for a confidence
//! horizon of consecutive updates — the streaming analogue of the paper's
//! observation that AEs show low inter-ASR agreement, combined with the
//! per-frame-signal argument of Logit Noising (PAPERS.md). `Benign` is only
//! ever decided at end-of-stream: agreement so far says nothing about the
//! suffix an attacker has not played yet.
//!
//! With no early-exit rule, [`DetectionStream::finish`] is byte-identical
//! to [`DetectionSystem::detect`] on the concatenated signal for
//! similarity-plane systems: every layer below (MFCC, stacking, logits,
//! greedy CTC) streams through the same state machines the one-shot path
//! uses.

use mvp_asr::AsrStream;

use crate::system::{Detection, DetectionSystem};

/// Early-exit policy for streaming detection.
///
/// The rule fires an early `Adversarial` verdict when, for
/// [`horizon`](Self::horizon) consecutive chunk updates, the mean running
/// similarity drops below `threshold - margin` *and* the trained
/// classifier agrees the running score vector is adversarial. No early
/// `Benign` exists by design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyExit {
    /// Similarity level below which cross-ASR agreement counts as
    /// collapsed.
    pub threshold: f64,
    /// Safety margin subtracted from `threshold`: transient dips within
    /// the margin do not count.
    pub margin: f64,
    /// Consecutive collapsed updates required before firing.
    pub horizon: usize,
    /// Minimum decoded frames — on *every* participating stream — before
    /// any early verdict; running transcripts over a handful of frames
    /// are noise.
    pub min_frames: usize,
}

impl Default for EarlyExit {
    /// Conservative defaults: collapse below 0.45 effective similarity,
    /// three consecutive confirmations, at least 25 decoded frames.
    fn default() -> Self {
        EarlyExit { threshold: 0.5, margin: 0.05, horizon: 3, min_frames: 25 }
    }
}

/// Incremental verdict state over one audio stream.
///
/// Obtain with [`DetectionSystem::stream_begin`], feed with
/// [`push`](Self::push), settle with [`finish`](Self::finish). The state
/// is reusable after `finish`; buffers keep their capacity.
#[derive(Debug, Default)]
pub struct DetectionStream {
    /// One streaming recogniser state per ASR, in
    /// [`DetectionSystem::recognizers`] order (target first).
    streams: Vec<AsrStream>,
    early: Option<EarlyExit>,
    /// Consecutive collapsed updates so far.
    collapsed: usize,
    /// The early verdict, once fired.
    verdict: Option<Detection>,
    n_samples: usize,
}

impl DetectionSystem {
    /// Opens an incremental detection stream, optionally with an
    /// early-exit rule. Without one, the stream only ever decides at
    /// [`DetectionStream::finish`] and matches one-shot detection exactly.
    pub fn stream_begin(&self, early: Option<EarlyExit>) -> DetectionStream {
        DetectionStream {
            streams: (0..self.n_recognizers()).map(|_| AsrStream::default()).collect(),
            early,
            collapsed: 0,
            verdict: None,
            n_samples: 0,
        }
    }
}

impl DetectionStream {
    /// Feeds a chunk of widened samples to every recogniser and, when an
    /// early-exit rule is installed, re-evaluates it. Returns the early
    /// verdict if one has fired (on this chunk or a previous one).
    ///
    /// Chunks after an early verdict still advance the recognisers, so a
    /// caller that keeps feeding can still obtain the full end-of-stream
    /// detection from [`finish`](Self::finish).
    pub fn push(&mut self, system: &DetectionSystem, chunk: &[f64]) -> Option<&Detection> {
        self.n_samples += chunk.len();
        let recognizers = system.recognizers();
        assert_eq!(recognizers.len(), self.streams.len(), "stream opened on another system");
        for (asr, stream) in recognizers.iter().zip(&mut self.streams) {
            asr.stream_push(stream, chunk);
        }
        if self.verdict.is_none() {
            if let Some(rule) = self.early {
                self.evaluate(system, rule);
            }
        }
        self.verdict.as_ref()
    }

    /// [`push`](Self::push) for raw `f32` samples.
    pub fn push_f32(&mut self, system: &DetectionSystem, chunk: &[f32]) -> Option<&Detection> {
        self.n_samples += chunk.len();
        let recognizers = system.recognizers();
        assert_eq!(recognizers.len(), self.streams.len(), "stream opened on another system");
        for (asr, stream) in recognizers.iter().zip(&mut self.streams) {
            asr.stream_push_f32(stream, chunk);
        }
        if self.verdict.is_none() {
            if let Some(rule) = self.early {
                self.evaluate(system, rule);
            }
        }
        self.verdict.as_ref()
    }

    /// One early-exit evaluation over the running transcripts.
    fn evaluate(&mut self, system: &DetectionSystem, rule: EarlyExit) {
        // Gate on the *least* decoded stream, not the target: a heavily
        // subsampling auxiliary (or a precision variant that lags) with
        // near-empty running transcripts would otherwise read as a
        // similarity collapse and fire a premature verdict.
        let least = self.streams.iter().map(AsrStream::frames_decoded).min().unwrap_or(0);
        if least < rule.min_frames {
            return;
        }
        let (target, auxiliaries, scores) = self.running(system);
        let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        let collapsed = mean < rule.threshold - rule.margin && system.classify_scores(&scores);
        self.collapsed = if collapsed { self.collapsed + 1 } else { 0 };
        if self.collapsed >= rule.horizon.max(1) {
            self.verdict = Some(Detection {
                is_adversarial: true,
                scores,
                target_transcription: target,
                auxiliary_transcriptions: auxiliaries,
                modality_features: Vec::new(),
                fused: false,
                early_exit: true,
            });
        }
    }

    /// The running `(target transcript, auxiliary transcripts, scores)` of
    /// the frames decoded so far.
    pub fn running(&self, system: &DetectionSystem) -> (String, Vec<String>, Vec<f64>) {
        let recognizers = system.recognizers();
        let target = recognizers[0].stream_transcript(&self.streams[0]);
        let auxiliaries: Vec<String> = recognizers[1..]
            .iter()
            .zip(&self.streams[1..])
            .map(|(asr, stream)| asr.stream_transcript(stream))
            .collect();
        let scores = system.scores_from_transcripts(&target, &auxiliaries);
        (target, auxiliaries, scores)
    }

    /// Whether the early-exit rule has fired.
    pub fn early_fired(&self) -> bool {
        self.verdict.is_some()
    }

    /// Total samples pushed since the stream was opened (or last finished).
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Logit frames the *target* recogniser has decoded so far.
    pub fn frames_decoded(&self) -> usize {
        self.streams.first().map_or(0, AsrStream::frames_decoded)
    }

    /// Ends the stream: flushes every recogniser, computes the full
    /// end-of-stream detection (this is where `Benign` is decided), and
    /// resets the state for reuse.
    ///
    /// The result is exactly
    /// [`DetectionSystem::detect_from_transcripts`] over the complete
    /// transcripts — byte-identical to one-shot detection of the
    /// concatenated signal on the similarity plane, regardless of how the
    /// signal was chunked and whether an early verdict already fired.
    pub fn finish(&mut self, system: &DetectionSystem) -> Detection {
        let recognizers = system.recognizers();
        assert_eq!(recognizers.len(), self.streams.len(), "stream opened on another system");
        let texts: Vec<String> = recognizers
            .iter()
            .zip(&mut self.streams)
            .map(|(asr, stream)| asr.stream_finish(stream))
            .collect();
        let (target, auxiliaries) = DetectionSystem::split_transcripts(texts);
        self.collapsed = 0;
        self.verdict = None;
        self.n_samples = 0;
        system.detect_from_transcripts(target, auxiliaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::AsrProfile;
    use mvp_audio::synth::{SpeakerProfile, Synthesizer};
    use mvp_audio::Waveform;
    use mvp_ml::ClassifierKind;
    use mvp_phonetics::Lexicon;

    /// Well-separated synthetic training scores for `n_aux` auxiliaries.
    fn training_scores(n_aux: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let benign = (0..8).map(|i| vec![0.9 + 0.01 * (i % 3) as f64; n_aux]).collect();
        let ae = (0..8).map(|i| vec![0.1 + 0.01 * (i % 3) as f64; n_aux]).collect();
        (benign, ae)
    }

    fn trained_system() -> DetectionSystem {
        let mut system =
            DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
        let (benign, ae) = training_scores(system.n_auxiliaries());
        system.train_on_scores(&benign, &ae, ClassifierKind::Knn);
        system
    }

    fn speech() -> Waveform {
        let synth = Synthesizer::new(16_000);
        synth.synthesize(&Lexicon::builtin(), "open the front door", &SpeakerProfile::default()).0
    }

    #[test]
    fn chunked_stream_matches_one_shot_detection() {
        let system = trained_system();
        let wave = speech();
        let reference = system.detect(&wave);
        let samples = wave.to_f64();
        let mut stream = system.stream_begin(None);
        // Random chunk boundaries (including 1-sample chunks), reusing the
        // stream across trials.
        let mut seed = 0x5EED_CAFEu64;
        for trial in 0..2 {
            let mut pos = 0;
            while pos < samples.len() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let len = if seed % 5 == 0 { 1 } else { 1 + (seed % 2000) as usize };
                let end = (pos + len).min(samples.len());
                assert!(stream.push(&system, &samples[pos..end]).is_none());
                pos = end;
            }
            let got = stream.finish(&system);
            assert_eq!(got.is_adversarial, reference.is_adversarial, "trial {trial}");
            assert_eq!(got.scores, reference.scores, "trial {trial}");
            assert_eq!(got.target_transcription, reference.target_transcription);
            assert_eq!(got.auxiliary_transcriptions, reference.auxiliary_transcriptions);
            assert!(!got.early_exit && !got.fused);
        }
        // f32 chunks behave identically.
        for chunk in wave.samples().chunks(911) {
            stream.push_f32(&system, chunk);
        }
        let got = stream.finish(&system);
        assert_eq!(got.scores, reference.scores);
    }

    #[test]
    fn early_exit_fires_after_horizon_and_respects_min_frames() {
        let mut system =
            DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
        // A classifier that calls *everything* in [0, 1] adversarial, plus
        // a threshold above the score range: the rule then fires purely on
        // its mechanics (min_frames gate, then `horizon` consecutive
        // updates), independent of what the audio decodes to.
        let benign: Vec<Vec<f64>> = (0..8).map(|_| vec![5.0; 1]).collect();
        let ae: Vec<Vec<f64>> = (0..8).map(|i| vec![0.5 + 0.01 * (i % 4) as f64; 1]).collect();
        system.train_on_scores(&benign, &ae, ClassifierKind::Knn);

        let wave = speech();
        let samples = wave.to_f64();
        let rule = EarlyExit { threshold: 2.0, margin: 0.0, horizon: 3, min_frames: 10 };
        let mut stream = system.stream_begin(Some(rule));
        let chunk = 1600; // 100 ms
        let mut fired_at = None;
        for (i, c) in samples.chunks(chunk).enumerate() {
            if stream.push(&system, c).is_some() {
                fired_at = Some(i);
                break;
            }
        }
        let fired_at = fired_at.expect("early exit must fire under an always-adversarial rule");
        // min_frames needs ~one chunk here; the horizon needs 3 updates
        // past it, so the verdict cannot land on the first two chunks.
        assert!(fired_at >= 2, "fired at chunk {fired_at}");
        assert!(stream.early_fired());
        let (_, _, scores) = stream.running(&system);
        assert_eq!(scores.len(), 1);
        // The stream still settles to the exact one-shot verdict.
        let rest: Vec<f64> = samples[(fired_at + 1) * chunk..].to_vec();
        stream.push(&system, &rest);
        let fin = stream.finish(&system);
        let reference = system.detect(&wave);
        assert_eq!(fin.scores, reference.scores);
        assert!(!fin.early_exit);

        // An unreachable threshold never fires.
        let never = EarlyExit { threshold: -1.0, margin: 0.0, horizon: 1, min_frames: 0 };
        let mut stream = system.stream_begin(Some(never));
        for c in samples.chunks(chunk) {
            assert!(stream.push(&system, c).is_none());
        }
        assert!(!stream.early_fired());
        assert_eq!(stream.finish(&system).scores, reference.scores);
    }

    #[test]
    fn min_frames_gates_on_the_least_decoded_stream() {
        // Kaldi subsamples 3x, so its stream decodes about a third of the
        // target's frames from the same audio. With an always-adversarial
        // classifier and horizon 1, a target-only gate would fire as soon
        // as the *target* passes min_frames; the fixed gate must hold the
        // verdict until the slow auxiliary catches up — visible as the
        // target being far past min_frames when the rule finally fires.
        let mut system =
            DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Kaldi).build();
        let benign: Vec<Vec<f64>> = (0..8).map(|_| vec![5.0; 1]).collect();
        let ae: Vec<Vec<f64>> = (0..8).map(|i| vec![0.5 + 0.01 * (i % 4) as f64; 1]).collect();
        system.train_on_scores(&benign, &ae, ClassifierKind::Knn);

        let samples = speech().to_f64();
        let min_frames = 30;
        let rule = EarlyExit { threshold: 2.0, margin: 0.0, horizon: 1, min_frames };
        let mut stream = system.stream_begin(Some(rule));
        let mut fired = false;
        for c in samples.chunks(1600) {
            if stream.push(&system, c).is_some() {
                fired = true;
                break;
            }
        }
        assert!(fired, "early exit must fire once every stream passes min_frames");
        // Under the old `streams[0]`-only gate the target would sit within
        // one chunk (~10 frames) of min_frames here; waiting for the 3x
        // subsampled auxiliary pushes it to roughly 3x min_frames.
        assert!(
            stream.frames_decoded() >= 2 * min_frames,
            "target decoded only {} frames at firing — gate did not wait \
             for the subsampled auxiliary",
            stream.frames_decoded()
        );
    }
}
