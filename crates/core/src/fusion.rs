//! Similarity + modality fusion: the [`FusedClassifier`] extends the
//! paper's similarity-score vector with the feature blocks of
//! `mvp-modality` detectors and (when the instability modality is
//! present) a benign-only one-class score derived from its block.
//!
//! The fused feature vector is laid out as
//!
//! ```text
//! [ sim_0 .. sim_{A-1} | block(kind_0) | block(kind_1) | .. | oneclass? ]
//! ```
//!
//! where `A` is the auxiliary count and the blocks appear in registry
//! order. Every raw entry is oriented higher = more benign-stable; the
//! derived one-class feature is mapped through `1 / (1 + score)` so it
//! shares that orientation. The [`FusionLayout`] pins this geometry and
//! travels with the classifier through the artifact plane, so a restored
//! classifier refuses vectors of the wrong shape instead of silently
//! misreading them.

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};
use mvp_ml::{Classifier, ClassifierKind, Dataset, FittedClassifier, Mat, OneClassScorer};
use mvp_modality::ModalityKind;

/// Quantile of benign one-class scores used as the anomaly threshold
/// when fitting the instability scorer.
const ONE_CLASS_QUANTILE: f64 = 0.95;

/// The shape of a fused feature vector: how many similarity scores lead
/// it and which modality blocks follow, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionLayout {
    n_similarity: usize,
    blocks: Vec<ModalityKind>,
}

impl FusionLayout {
    /// A layout of `n_similarity` similarity scores followed by the
    /// default-width feature blocks of `blocks`, in order.
    ///
    /// # Panics
    ///
    /// Panics if `n_similarity` is zero, `blocks` is empty (use the
    /// plain [`FittedClassifier`] for similarity-only detection), or a
    /// kind repeats.
    pub fn new(n_similarity: usize, blocks: Vec<ModalityKind>) -> FusionLayout {
        assert!(n_similarity > 0, "at least one similarity score is required");
        assert!(!blocks.is_empty(), "fusion without modality blocks is similarity-only");
        for (i, kind) in blocks.iter().enumerate() {
            assert!(!blocks[..i].contains(kind), "modality {kind} appears twice in layout");
        }
        FusionLayout { n_similarity, blocks }
    }

    /// Number of leading similarity scores.
    pub fn n_similarity(&self) -> usize {
        self.n_similarity
    }

    /// The modality blocks, in vector order.
    pub fn blocks(&self) -> &[ModalityKind] {
        &self.blocks
    }

    /// Width of the raw vector callers supply: similarity scores plus
    /// concatenated modality blocks (no derived features).
    pub fn raw_dim(&self) -> usize {
        self.n_similarity + self.blocks.iter().map(|k| k.feature_dim()).sum::<usize>()
    }

    /// Width of the vector the inner classifier sees: [`raw_dim`]
    /// (`Self::raw_dim`) plus the derived one-class feature when the
    /// instability block is present.
    pub fn fused_dim(&self) -> usize {
        self.raw_dim() + usize::from(self.has_instability())
    }

    /// Whether the layout carries the instability block (and therefore a
    /// derived one-class feature).
    pub fn has_instability(&self) -> bool {
        self.blocks.contains(&ModalityKind::Instability)
    }

    /// The index range of `kind`'s block within a raw vector.
    pub fn block_range(&self, kind: ModalityKind) -> Option<std::ops::Range<usize>> {
        let mut offset = self.n_similarity;
        for &block in &self.blocks {
            let width = block.feature_dim();
            if block == kind {
                return Some(offset..offset + width);
            }
            offset += width;
        }
        None
    }
}

/// A classifier over fused similarity + modality features, with an
/// optional benign-only one-class scorer over the instability block.
#[derive(Debug, Clone)]
pub struct FusedClassifier {
    layout: FusionLayout,
    instability: Option<OneClassScorer>,
    classifier: FittedClassifier,
}

impl FusedClassifier {
    /// Fits the fusion on raw feature rows (`[similarity .. | modality
    /// blocks ..]`, one row per sample, see [`FusionLayout::raw_dim`]).
    ///
    /// When the layout carries the instability block, a
    /// [`OneClassScorer`] is first fitted on the *benign* rows' block
    /// (no adversarial data touches it) and its score is appended to
    /// every row as a derived feature before the inner classifier fits.
    ///
    /// # Panics
    ///
    /// Panics if either class is empty or a row width differs from the
    /// layout's raw width.
    pub fn fit(
        layout: FusionLayout,
        benign: &Mat,
        adversarial: &Mat,
        kind: ClassifierKind,
    ) -> FusedClassifier {
        assert!(!benign.is_empty() && !adversarial.is_empty(), "empty training class");
        let dim = layout.raw_dim();
        assert!(
            benign.n_cols() == dim && adversarial.n_cols() == dim,
            "raw feature rows must match the layout width ({dim})"
        );

        let instability = layout.block_range(ModalityKind::Instability).map(|range| {
            let block = Mat::from_rows(
                benign.rows().map(|r| r[range.clone()].to_vec()).collect(),
                range.len(),
            );
            OneClassScorer::fit_benign(&block, ONE_CLASS_QUANTILE)
        });

        let augment = |rows: &Mat| {
            Mat::from_rows(
                rows.rows().map(|r| augment_row(&layout, instability.as_ref(), r)).collect(),
                layout.fused_dim(),
            )
        };
        let data = Dataset::from_classes(augment(benign), augment(adversarial));
        let classifier = FittedClassifier::fit(kind, &data);
        FusedClassifier { layout, instability, classifier }
    }

    /// The fused vector shape this classifier was fitted for.
    pub fn layout(&self) -> &FusionLayout {
        &self.layout
    }

    /// The benign-only scorer over the instability block, when fitted.
    pub fn one_class(&self) -> Option<&OneClassScorer> {
        self.instability.as_ref()
    }

    /// The inner classifier over the augmented vector.
    pub fn classifier(&self) -> &FittedClassifier {
        &self.classifier
    }

    /// Extends a raw feature row with the derived one-class feature (a
    /// no-op when the layout has no instability block). Exposed so
    /// benches can score the exact vector the inner classifier sees.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not match the layout's raw width.
    pub fn augment(&self, raw: &[f64]) -> Vec<f64> {
        augment_row(&self.layout, self.instability.as_ref(), raw)
    }

    /// Classifies a raw feature row (`[similarity .. | blocks ..]`).
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not match the layout's raw width.
    pub fn is_adversarial(&self, raw: &[f64]) -> bool {
        self.classifier.predict(&self.augment(raw)) == 1
    }
}

fn augment_row(layout: &FusionLayout, scorer: Option<&OneClassScorer>, raw: &[f64]) -> Vec<f64> {
    assert_eq!(raw.len(), layout.raw_dim(), "raw feature row width");
    let mut fused = raw.to_vec();
    if let Some(scorer) = scorer {
        let range = layout
            .block_range(ModalityKind::Instability)
            .expect("scorer implies instability block");
        // Map the anomaly score (0 at the benign mean, unbounded above)
        // into (0, 1] with the fused orientation: higher = benign-stable.
        fused.push(1.0 / (1.0 + scorer.score(&raw[range])));
    }
    fused
}

impl Persist for FusedClassifier {
    const KIND: ArtifactKind = ArtifactKind::FUSED_CLASSIFIER;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.layout.n_similarity);
        enc.put_usize(self.layout.blocks.len());
        for kind in &self.layout.blocks {
            enc.put_u8(kind.tag());
        }
        enc.put_bool(self.instability.is_some());
        if let Some(scorer) = &self.instability {
            scorer.encode(enc);
        }
        self.classifier.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let n_similarity = dec.usize()?;
        let n_blocks = dec.usize()?;
        if n_similarity == 0 || n_blocks == 0 {
            return Err(ArtifactError::SchemaMismatch(format!(
                "fusion layout {n_similarity} similarity scores, {n_blocks} blocks"
            )));
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let tag = dec.u8()?;
            let kind = ModalityKind::from_tag(tag)
                .ok_or_else(|| ArtifactError::SchemaMismatch(format!("modality tag {tag}")))?;
            if blocks.contains(&kind) {
                return Err(ArtifactError::SchemaMismatch(format!(
                    "modality {kind} appears twice in layout"
                )));
            }
            blocks.push(kind);
        }
        let layout = FusionLayout { n_similarity, blocks };
        let instability = if dec.bool()? { Some(OneClassScorer::decode(dec)?) } else { None };
        if instability.is_some() != layout.has_instability() {
            return Err(ArtifactError::SchemaMismatch(
                "one-class scorer presence disagrees with layout".into(),
            ));
        }
        if let Some(scorer) = &instability {
            let width = ModalityKind::Instability.feature_dim();
            if scorer.dim() != width {
                return Err(ArtifactError::SchemaMismatch(format!(
                    "one-class scorer dimension {} for a {width}-wide instability block",
                    scorer.dim()
                )));
            }
        }
        let classifier = FittedClassifier::decode(dec)?;
        Ok(FusedClassifier { layout, instability, classifier })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_layout() -> FusionLayout {
        FusionLayout::new(3, ModalityKind::ALL.to_vec())
    }

    /// Synthetic raw rows: benign rows sit near 0.9 everywhere, AEs near
    /// 0.2, with a deterministic jitter so the one-class fit has spread.
    fn raw_rows(layout: &FusionLayout, base: f64, n: usize) -> Mat {
        Mat::from_rows(
            (0..n)
                .map(|i| {
                    let jitter = (i % 7) as f64 * 0.01;
                    vec![base + jitter; layout.raw_dim()]
                })
                .collect(),
            layout.raw_dim(),
        )
    }

    #[test]
    fn layout_dims_and_ranges() {
        let layout = full_layout();
        assert_eq!(layout.n_similarity(), 3);
        let blocks_width: usize = ModalityKind::ALL.iter().map(|k| k.feature_dim()).sum();
        assert_eq!(layout.raw_dim(), 3 + blocks_width);
        assert!(layout.has_instability());
        assert_eq!(layout.fused_dim(), layout.raw_dim() + 1);

        let transform = layout.block_range(ModalityKind::Transform).unwrap();
        assert_eq!(transform.start, 3);
        assert_eq!(transform.len(), ModalityKind::Transform.feature_dim());
        let instability = layout.block_range(ModalityKind::Instability).unwrap();
        assert_eq!(instability.end, layout.raw_dim());

        let no_instability = FusionLayout::new(2, vec![ModalityKind::Distribution]);
        assert!(!no_instability.has_instability());
        assert_eq!(no_instability.fused_dim(), no_instability.raw_dim());
        assert_eq!(no_instability.block_range(ModalityKind::Instability), None);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn layout_rejects_duplicates() {
        FusionLayout::new(1, vec![ModalityKind::Transform, ModalityKind::Transform]);
    }

    #[test]
    fn fit_separates_and_augments() {
        let layout = full_layout();
        let benign = raw_rows(&layout, 0.88, 30);
        let aes = raw_rows(&layout, 0.2, 30);
        let fused = FusedClassifier::fit(layout.clone(), &benign, &aes, ClassifierKind::Svm);

        assert!(fused.one_class().is_some());
        assert_eq!(fused.augment(benign.row(0)).len(), layout.fused_dim());
        assert!(!fused.is_adversarial(&vec![0.9; layout.raw_dim()]));
        assert!(fused.is_adversarial(&vec![0.15; layout.raw_dim()]));
    }

    #[test]
    fn one_class_feature_tracks_benign_distance() {
        let layout = full_layout();
        let benign = raw_rows(&layout, 0.88, 30);
        let aes = raw_rows(&layout, 0.2, 30);
        let fused = FusedClassifier::fit(layout.clone(), &benign, &aes, ClassifierKind::Svm);
        let near = fused.augment(&vec![0.9; layout.raw_dim()]);
        let far = fused.augment(&vec![0.1; layout.raw_dim()]);
        let derived_near = *near.last().unwrap();
        let derived_far = *far.last().unwrap();
        assert!((0.0..=1.0).contains(&derived_near));
        assert!(derived_near > derived_far, "{derived_near} vs {derived_far}");
    }

    #[test]
    fn no_instability_layout_skips_one_class() {
        let layout = FusionLayout::new(2, vec![ModalityKind::Transform]);
        let benign = raw_rows(&layout, 0.9, 20);
        let aes = raw_rows(&layout, 0.25, 20);
        let fused = FusedClassifier::fit(layout.clone(), &benign, &aes, ClassifierKind::Knn);
        assert!(fused.one_class().is_none());
        assert_eq!(fused.augment(benign.row(0)).len(), layout.raw_dim());
    }

    #[test]
    fn round_trips_through_persist_with_identical_verdicts() {
        let layout = full_layout();
        let benign = raw_rows(&layout, 0.88, 30);
        let aes = raw_rows(&layout, 0.2, 30);
        let fused = FusedClassifier::fit(layout.clone(), &benign, &aes, ClassifierKind::Svm);

        let mut bytes = Vec::new();
        fused.write_to(&mut bytes).unwrap();
        let restored = FusedClassifier::read_from(&bytes[..]).unwrap();

        assert_eq!(restored.layout(), fused.layout());
        for base in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let row = vec![base; layout.raw_dim()];
            assert_eq!(restored.augment(&row), fused.augment(&row), "base {base}");
            assert_eq!(restored.is_adversarial(&row), fused.is_adversarial(&row), "base {base}");
        }
    }

    #[test]
    fn corrupted_artifact_is_refused() {
        let layout = full_layout();
        let benign = raw_rows(&layout, 0.88, 30);
        let aes = raw_rows(&layout, 0.2, 30);
        let fused = FusedClassifier::fit(layout, &benign, &aes, ClassifierKind::Svm);
        let mut bytes = Vec::new();
        fused.write_to(&mut bytes).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(FusedClassifier::read_from(&bytes[..]).is_err());
    }

    #[test]
    fn wrong_width_rows_rejected() {
        let layout = full_layout();
        let benign = raw_rows(&layout, 0.88, 10);
        let aes = raw_rows(&layout, 0.2, 10);
        let fused = FusedClassifier::fit(layout, &benign, &aes, ClassifierKind::Svm);
        let result = std::panic::catch_unwind(|| fused.is_adversarial(&[0.5, 0.5]));
        assert!(result.is_err());
    }
}
