//! Unsupervised majority-disagreement baseline.
//!
//! A natural alternative to MVP-EARS's learned classifier: flag an audio
//! when the target transcription disagrees (similarity below a fixed
//! cutoff) with a majority of the auxiliaries. It needs no training at all,
//! which makes it a useful lower bound when comparing against the learned
//! systems — and its weaker accuracy is itself evidence for the paper's
//! classifier-based design.

use crate::similarity::SimilarityMethod;

/// The training-free disagreement detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MajorityBaseline {
    /// Similarity below this counts as a disagreement.
    pub cutoff: f64,
    /// The similarity method used on transcription pairs.
    pub method: SimilarityMethod,
}

impl MajorityBaseline {
    /// A baseline with the given disagreement cutoff and the default
    /// similarity method.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cutoff < 1`.
    pub fn new(cutoff: f64) -> MajorityBaseline {
        assert!(cutoff > 0.0 && cutoff < 1.0, "cutoff out of (0, 1)");
        MajorityBaseline { cutoff, method: SimilarityMethod::default() }
    }

    /// Whether a score vector (one similarity per auxiliary) is flagged:
    /// strictly more than half of the auxiliaries disagree.
    ///
    /// # Panics
    ///
    /// Panics on an empty score vector.
    pub fn is_adversarial_scores(&self, scores: &[f64]) -> bool {
        assert!(!scores.is_empty(), "no auxiliary scores");
        let disagreements = scores.iter().filter(|&&s| s < self.cutoff).count();
        disagreements * 2 > scores.len()
    }

    /// Convenience: flags from raw transcriptions (target vs auxiliaries).
    ///
    /// # Panics
    ///
    /// Panics if `auxiliaries` is empty.
    pub fn is_adversarial_transcripts(&self, target: &str, auxiliaries: &[String]) -> bool {
        let scores: Vec<f64> = auxiliaries.iter().map(|a| self.method.score(target, a)).collect();
        self.is_adversarial_scores(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_agreement_passes() {
        let b = MajorityBaseline::new(0.8);
        assert!(!b.is_adversarial_scores(&[0.95, 0.9, 0.99]));
    }

    #[test]
    fn majority_disagreement_flags() {
        let b = MajorityBaseline::new(0.8);
        assert!(b.is_adversarial_scores(&[0.3, 0.4, 0.9]));
        // Exactly half is not a strict majority.
        assert!(!b.is_adversarial_scores(&[0.3, 0.9]));
    }

    #[test]
    fn single_auxiliary_acts_as_threshold() {
        let b = MajorityBaseline::new(0.8);
        assert!(b.is_adversarial_scores(&[0.5]));
        assert!(!b.is_adversarial_scores(&[0.85]));
    }

    #[test]
    fn transcript_convenience_path() {
        let b = MajorityBaseline::new(0.8);
        assert!(b.is_adversarial_transcripts(
            "open the front door",
            &["the man walked the street".to_string(), "the man walked home".to_string()],
        ));
        assert!(!b.is_adversarial_transcripts(
            "open the front door",
            &["open the front door".to_string(), "open the front door".to_string()],
        ));
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn bad_cutoff_rejected() {
        MajorityBaseline::new(1.5);
    }
}
