#!/usr/bin/env bash
# The tier-1 CI gate. Fully offline: the workspace vendors every
# dependency, so no network access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
