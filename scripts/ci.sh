#!/usr/bin/env bash
# The tier-1 CI gate. Fully offline: the workspace vendors every
# dependency, so no network access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q

# Artifact-plane smoke: train the cheapest profile, persist it, and prove
# a clean load succeeds while a corrupted artifact fails with a typed
# error (exit status is the gate).
cargo run --release -q -p mvp-bench --bin artifact_smoke

# Observability-plane smoke: disabled-tracing overhead must stay under
# 2 % per request, traced detections must emit a valid span forest, and
# every serve verdict must leave a parseable audit record that agrees
# with the metrics exposition (exit status is the gate).
cargo run --release -q -p mvp-bench --bin obs_smoke
