#!/usr/bin/env bash
# The tier-1 CI gate. Fully offline: the workspace vendors every
# dependency, so no network access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
RUSTFLAGS="-Dwarnings" cargo build --release
cargo test -q

# Static-analysis gate: the workspace's own invariants (data-plane Mat
# discipline, serve-path panic freedom via the workspace call graph,
# NaN-safe comparators, allocation-free kernel hot paths, artifact
# schema versioning, ...) enforced by mvp-lint. Deny findings fail the
# build; suppressions require a reason and a known rule name. The run
# also records its own wall time as a bench artifact.
cargo run --release -q -p mvp-lint --bin lint -- --fail-on=deny --bench-out BENCH_lint.json

# Lint self-test: seed an *interprocedural* violation into a linted path
# — a serve entry point whose panic sits one call away, so only the
# call-graph rule can see it — and prove the gate actually fails on it,
# then clean up whatever happens.
lint_smoke() {
    local seeded="crates/serve/src/ci_lint_smoke_seeded.rs"
    trap 'rm -f "$seeded"' RETURN
    printf 'pub fn submit() { seeded_helper(); }\nfn seeded_helper() { panic!("ci lint smoke"); }\n' > "$seeded"
    if cargo run --release -q -p mvp-lint --bin lint -- --fail-on=deny > /dev/null 2>&1; then
        echo "lint_smoke: gate passed with a seeded violation" >&2
        return 1
    fi
    echo "lint_smoke: seeded violation correctly failed the gate"
}
lint_smoke

# Artifact-plane smoke: train the cheapest profile, persist it, and prove
# a clean load succeeds while a corrupted artifact fails with a typed
# error (exit status is the gate).
cargo run --release -q -p mvp-bench --bin artifact_smoke

# Observability-plane smoke: disabled-tracing overhead must stay under
# 2 % per request, traced detections must emit a valid span forest, and
# every serve verdict must leave a parseable audit record that agrees
# with the metrics exposition (exit status is the gate).
cargo run --release -q -p mvp-bench --bin obs_smoke

# Modality-plane smoke: fit the fused similarity + modality classifier
# at tiny scale and require fused AUC >= the similarity-only baseline,
# plus a FusedClassifier persist round-trip and corruption refusal
# (exit status is the gate; the bench artifact goes to a temp dir).
cargo run --release -q -p mvp-bench --bin modality_smoke

# Kernel-plane smoke: every tuned kernel must agree with its scalar
# oracle (bit-exact or within documented reassociation slack), and
# end-to-end tiny-scale transcription on the vectorized path must not
# lose to the scalar fallback (exit status is the gate).
cargo run --release -q -p mvp-bench --bin kernel_smoke

# Streaming/sharding smoke: a 4-shard router must beat a single engine
# by >= 1.5x at tiny scale (cache affinity, not cores), and a forced
# chunked run must reproduce the one-shot verdict exactly (exit status
# is the gate).
cargo run --release -q -p mvp-bench --bin shard_smoke

# Quantization-plane smoke: the int8 GCS acoustic model must beat f64
# by >= 1.3x (the AM level is where the win physically lives — the MFCC
# frontend dominates end-to-end transcription), the int8 target must
# agree with its f64 parent on tiny-scale benign speech, and a corrupt
# quantized artifact must be refused typed (exit status is the gate).
cargo run --release -q -p mvp-bench --bin quant_smoke

# Collate whatever BENCH_*.json artifacts exist into one trajectory
# table (informational; never fails the gate on missing artifacts).
scripts/bench_summary.sh
