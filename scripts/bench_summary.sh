#!/usr/bin/env bash
# Collates every BENCH_*.json artifact in the repo root into one short
# trajectory table, so a CI log (or a human) can read the performance
# story of the repo at a glance. Informational only: missing or
# unparseable artifacts are reported, never fatal.
set -uo pipefail
cd "$(dirname "$0")/.."

python3 - <<'PY'
import glob
import json
import os

rows = []


def add(artifact, metric, value):
    rows.append((artifact, metric, value))


def summarize_serve(doc):
    by_name = {level.get("name", "?"): level for level in doc}
    for level in doc:
        name = level.get("name", "?")
        extra = ""
        if "n_shards" in level:
            extra = f" steals={sum(level.get('steal_counts', []))}"
            rates = level.get("shard_cache_hit_rates", [])
            if rates:
                extra += " hit=" + "/".join(f"{r:.0%}" for r in rates)
        if level.get("early_exits"):
            frac = level.get("mean_verdict_audio_frac", 1.0)
            extra = (
                f" early={level['early_exits']}/{level.get('offered', '?')}"
                f" audio={frac:.0%}"
            )
        add("serve", name, f"{level.get('throughput_rps', 0):.1f} rps{extra}")
    x1 = by_name.get("sharded-x1", {}).get("throughput_rps")
    x4 = by_name.get("sharded-x4", {}).get("throughput_rps")
    if x1 and x4:
        add("serve", "4-shard speedup", f"{x4 / x1:.2f}x over 1 shard")


def summarize(path, doc):
    name = os.path.basename(path)
    if name == "BENCH_serve.json" and isinstance(doc, list):
        summarize_serve(doc)
    elif name == "BENCH_artifact.json" and "profiles" in doc:
        speedups = [p.get("speedup", 0) for p in doc["profiles"]]
        add("artifact", f"{len(speedups)} profiles",
            f"warm-load speedup {min(speedups):.0f}x..{max(speedups):.0f}x")
    elif name == "BENCH_dataplane.json" and "per_call_rps" in doc:
        add("dataplane", "transcription",
            f"{doc['per_call_rps']:.0f} rps per-call, "
            f"{doc.get('batch_scratch_rps', 0):.0f} rps batched, "
            f"kernels {doc.get('kernel_speedup', 0):.2f}x scalar")
    elif name == "BENCH_modality.json" and "fused_auc" in doc:
        add("modality", "AUC",
            f"similarity {doc.get('similarity_auc', 0):.4f} -> "
            f"fused {doc['fused_auc']:.4f}")
    elif name == "BENCH_obs.json" and "modes" in doc:
        worst = max(m.get("overhead_pct", 0) for m in doc["modes"])
        add("obs", f"{len(doc['modes'])} modes", f"worst overhead {worst:.2f}%")
    elif name == "BENCH_lint.json" and "graph_nodes" in doc:
        add("lint", "workspace analysis",
            f"{doc.get('files_scanned', 0)} files, "
            f"{doc['graph_nodes']} fns / {doc.get('graph_edges', 0)} edges, "
            f"{doc.get('wall_ms', 0):.0f} ms")
    elif name == "BENCH_quant.json" and "aucs" in doc:
        add("quant", "int8 inference",
            f"AM {doc.get('am_headline_speedup', 0):.2f}x f64 (GCS), "
            f"end-to-end {doc.get('transcribe_speedup', 0):.2f}x, "
            f"benign agreement {doc.get('benign_agreement', 0):.0%}")
        aucs = doc["aucs"]
        add("quant", "ensemble AUC",
            f"precision-only {aucs.get('precision_only', 0):.4f}, "
            f"profile-only {aucs.get('profile_only', 0):.4f}, "
            f"mixed {aucs.get('mixed', 0):.4f}")
    else:
        kind = f"{len(doc)} entries" if isinstance(doc, list) else "object"
        add(name.removeprefix("BENCH_").removesuffix(".json"), kind, "(no summarizer)")


paths = sorted(glob.glob("BENCH_*.json"))
if not paths:
    print("bench summary: no BENCH_*.json artifacts found")
    raise SystemExit(0)

for path in paths:
    try:
        with open(path) as fh:
            summarize(path, json.load(fh))
    except (OSError, json.JSONDecodeError) as err:
        add(os.path.basename(path), "unreadable", str(err))

width_a = max(len(r[0]) for r in rows)
width_m = max(len(r[1]) for r in rows)
print("== bench trajectory ==")
for artifact, metric, value in rows:
    print(f"{artifact:<{width_a}}  {metric:<{width_m}}  {value}")
PY
exit 0
