//! Span tracing across the serving path. Tracing state is process-global,
//! so this test lives alone in its own binary: no concurrent test can
//! record spans into the ring while the forest is being validated.

use std::sync::Arc;

use mvp_ears_suite::asr::AsrProfile;
use mvp_ears_suite::audio::Waveform;
use mvp_ears_suite::corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears_suite::ears::DetectionSystem;
use mvp_ears_suite::ml::ClassifierKind;
use mvp_ears_suite::obs::trace;
use mvp_ears_suite::serve::{DegradePolicy, DetectionEngine, EngineConfig};

#[test]
fn serve_path_emits_a_valid_span_forest() {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
    let n_aux = system.n_auxiliaries();
    let benign: Vec<Vec<f64>> = (0..24).map(|i| vec![0.85 + 0.01 * (i % 5) as f64]).collect();
    let aes: Vec<Vec<f64>> = (0..24).map(|i| vec![0.05 + 0.01 * (i % 5) as f64]).collect();
    system.train_on_scores(&benign, &aes, ClassifierKind::Knn);
    let system = Arc::new(system);
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 2, seed: 31, ..CorpusConfig::default() }).build();
    let waves: Vec<Arc<Waveform>> =
        corpus.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();

    // Enable only around the serving window, after all training noise.
    trace::enable(1 << 16);
    let policy = DegradePolicy::untrained(n_aux);
    let config = EngineConfig { deadline_ms: 60_000, ..EngineConfig::default() };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);
    for wave in &waves {
        engine.detect_blocking(Arc::clone(wave)).expect("accepted");
    }
    let replay = engine.detect_blocking(Arc::clone(&waves[0])).expect("accepted");
    assert!(replay.from_cache, "replay must hit the cache");
    engine.shutdown(); // joins every worker: all spans are closed
    let events = trace::drain();
    trace::disable();

    assert_eq!(trace::dropped(), 0, "ring must not overflow in this test");
    trace::validate(&events).unwrap_or_else(|e| panic!("invalid span forest: {e}"));

    // Every stage of the serving pipeline shows up.
    for name in [
        "serve.submit",
        "serve.flush",
        "serve.transcribe_batch",
        "serve.finalize",
        "serve.cache_hit",
        "asr.features",
        "asr.decode",
    ] {
        assert!(
            events.iter().any(|e| e.name == name),
            "no `{name}` span among {} events",
            events.len()
        );
    }

    // Ingress spans are tagged with the request id, one per submission.
    let submits = events.iter().filter(|e| e.name == "serve.submit").count();
    assert_eq!(submits, waves.len() + 1);

    // The forest renders with one line per span.
    let tree = trace::render_tree(&events);
    assert_eq!(tree.lines().count(), events.len());
    assert!(tree.contains("serve.transcribe_batch"));
}
