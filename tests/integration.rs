//! Cross-crate integration tests: the full pipeline from text to audio to
//! attack to detection, exercised end to end.
//!
//! All tests live in one binary so the process-wide trained-ASR cache is
//! shared (each profile trains once, in seconds).

use mvp_ears_suite::asr::{Asr, AsrProfile};
use mvp_ears_suite::attack::{whitebox_attack, AeKind, WhiteBoxConfig};
use mvp_ears_suite::audio::synth::{SpeakerProfile, Synthesizer};
use mvp_ears_suite::corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears_suite::ears::eval::ScorePools;
use mvp_ears_suite::ears::{
    synthesize_mae, DetectionSystem, MaeType, SimilarityMethod, ThresholdDetector,
};
use mvp_ears_suite::ml::ClassifierKind;
use mvp_ears_suite::phonetics::Lexicon;
use mvp_ears_suite::textsim::wer;

fn speak(text: &str) -> mvp_ears_suite::audio::Waveform {
    let synth = Synthesizer::new(16_000);
    let (w, _) = synth.synthesize(&Lexicon::builtin(), text, &SpeakerProfile::default());
    w
}

#[test]
fn every_profile_transcribes_clean_speech() {
    // The weak Kaldi profile is excluded: it is deliberately inaccurate.
    let text = "the man walked the street";
    let wave = speak(text);
    for profile in [AsrProfile::Ds0, AsrProfile::Ds1, AsrProfile::Gcs, AsrProfile::At] {
        let hyp = profile.trained().transcribe(&wave);
        assert!(wer(text, &hyp) <= 0.4, "{profile}: heard {hyp:?} for {text:?}");
    }
}

#[test]
fn homophones_yield_identical_transcripts_across_asrs() {
    // "i see the sea" and "i sea the see" synthesize to identical audio, so
    // every ASR must transcribe them identically — the situation phonetic
    // encoding is designed for.
    let a = speak("i see the sea");
    let b = speak("i sea the see");
    assert_eq!(a, b);
    let ds0 = AsrProfile::Ds0.trained();
    assert_eq!(ds0.transcribe(&a), ds0.transcribe(&b));
}

#[test]
fn benign_similarity_scores_are_high_everywhere() {
    let system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .auxiliary(AsrProfile::At)
        .build();
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 5, seed: 77, ..CorpusConfig::default() }).build();
    for u in corpus.utterances() {
        let scores = system.score_vector(&u.wave);
        assert_eq!(scores.len(), 3);
        for (i, &s) in scores.iter().enumerate() {
            assert!(s > 0.6, "aux {i} scored {s} on benign {:?}", u.text);
        }
    }
}

#[test]
fn end_to_end_attack_and_detection() {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Gcs).build();
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 8, seed: 3, ..CorpusConfig::default() }).build();
    let ds0 = AsrProfile::Ds0.trained();

    let attack = whitebox_attack(
        &ds0,
        &corpus.utterances()[0].wave,
        "unlock the garage",
        &WhiteBoxConfig::default(),
    );
    assert!(attack.success, "attack failed: {attack}");

    let benign_scores: Vec<Vec<f64>> =
        corpus.utterances().iter().skip(1).map(|u| system.score_vector(&u.wave)).collect();
    let ae_scores = vec![system.score_vector(&attack.adversarial)];
    system.train_on_scores(&benign_scores, &ae_scores, ClassifierKind::Svm);

    assert!(system.detect(&attack.adversarial).is_adversarial);
    assert!(!system.detect(&corpus.utterances()[2].wave).is_adversarial);
}

#[test]
fn threshold_detector_catches_unseen_ae() {
    let system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::At).build();
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 10, seed: 9, ..CorpusConfig::default() }).build();
    let benign: Vec<f64> =
        corpus.utterances().iter().map(|u| system.score_vector(&u.wave)[0]).collect();
    let det = ThresholdDetector::fit_benign(&benign, 0.2);

    let ds0 = AsrProfile::Ds0.trained();
    let attack = whitebox_attack(
        &ds0,
        &speak("the teacher found the answer"),
        "delete all files",
        &WhiteBoxConfig::default(),
    );
    assert!(attack.success);
    let ae_score = system.score_vector(&attack.adversarial)[0];
    assert!(
        det.is_adversarial(ae_score),
        "AE score {ae_score} above threshold {}",
        det.threshold()
    );
}

#[test]
fn mae_pipeline_from_real_pools() {
    let system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .auxiliary(AsrProfile::At)
        .build();
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 6, seed: 21, ..CorpusConfig::default() }).build();
    let benign: Vec<Vec<f64>> =
        corpus.utterances().iter().map(|u| system.score_vector(&u.wave)).collect();
    // A crude attack pool: pairwise-dissimilar transcripts scored directly.
    let method = SimilarityMethod::default();
    let attack_pool: Vec<Vec<f64>> = (0..4)
        .map(|i| {
            let s =
                method.score("open the front door", "the man walked the street") + i as f64 * 0.01;
            vec![s; 3]
        })
        .collect();
    let pools = ScorePools::from_score_vectors(&benign, &attack_pool);
    let mae = synthesize_mae(&pools, &MaeType::Type4.fooled_mask(), 30, 1);
    assert_eq!(mae.n_rows(), 30);
    for v in mae.rows() {
        // Fooled auxiliaries (DS1, GCS) look benign; AT looks attacked.
        assert!(v[0] > v[2] && v[1] > v[2], "{v:?}");
    }
}

#[test]
fn attack_dataset_kinds_and_verification() {
    let ds0 = AsrProfile::Ds0.trained();
    let hosts = CorpusBuilder::new(CorpusConfig {
        size: 2,
        seed: 55,
        noise_prob: 0.0,
        ..CorpusConfig::default()
    })
    .build();
    let aes = mvp_ears_suite::attack::generate_ae_dataset(
        &ds0,
        hosts.utterances(),
        &["turn on the lights"],
        AeKind::WhiteBox,
        1,
        3,
    );
    assert_eq!(aes.len(), 1);
    assert_eq!(wer(&aes[0].command, &ds0.transcribe(&aes[0].wave)), 0.0);
}

#[test]
fn detection_survives_noisy_benign_audio() {
    // Benign audio with moderate room noise must not trip the detector.
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
    let clean = CorpusBuilder::new(CorpusConfig {
        size: 10,
        seed: 31,
        noise_prob: 0.0,
        ..CorpusConfig::default()
    })
    .build();
    let noisy = CorpusBuilder::new(CorpusConfig {
        size: 6,
        seed: 31,
        noise_prob: 1.0,
        ..CorpusConfig::default()
    })
    .build();
    let benign_scores: Vec<Vec<f64>> =
        clean.utterances().iter().map(|u| system.score_vector(&u.wave)).collect();
    // Train against clearly-adversarial synthetic scores.
    let ae_scores: Vec<Vec<f64>> = (0..10).map(|i| vec![0.3 + i as f64 * 0.01]).collect();
    system.train_on_scores(&benign_scores, &ae_scores, ClassifierKind::Svm);
    let false_alarms =
        noisy.utterances().iter().filter(|u| system.detect(&u.wave).is_adversarial).count();
    assert!(false_alarms <= 1, "{false_alarms}/6 noisy benign flagged");
}
