//! Integration tests for the observability plane on the serving path:
//! every verdict — full, cache hit, degraded, shed — leaves a JSONL audit
//! record that reconstructs the decision, and the Prometheus exposition
//! agrees with the stats snapshot (one storage cell, no dual bookkeeping).

use std::path::PathBuf;
use std::sync::Arc;

use mvp_ears_suite::asr::AsrProfile;
use mvp_ears_suite::audio::Waveform;
use mvp_ears_suite::corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears_suite::ears::DetectionSystem;
use mvp_ears_suite::ml::ClassifierKind;
use mvp_ears_suite::obs::json::{parse, Value};
use mvp_ears_suite::obs::AuditLog;
use mvp_ears_suite::serve::{
    DegradePolicy, DetectionEngine, EngineConfig, SubmitError, VerdictKind,
};

fn training_scores(n_aux: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let benign: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..n_aux).map(|j| 0.82 + 0.015 * ((i + j) % 10) as f64).collect())
        .collect();
    let aes: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..n_aux).map(|j| 0.03 + 0.015 * ((i * 3 + j) % 10) as f64).collect())
        .collect();
    (benign, aes)
}

fn trained_system() -> Arc<DetectionSystem> {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .build();
    let (benign, aes) = training_scores(system.n_auxiliaries());
    system.train_on_scores(&benign, &aes, ClassifierKind::Knn);
    Arc::new(system)
}

fn test_waves(n: usize) -> Vec<Arc<Waveform>> {
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: n, seed: 515, ..CorpusConfig::default() }).build();
    corpus.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect()
}

/// A fresh audit log in the temp dir, unique per test.
fn audit_log(tag: &str) -> (Arc<AuditLog>, PathBuf) {
    let path =
        std::env::temp_dir().join(format!("mvp-obs-plane-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let log = AuditLog::create(&path, 1 << 20).expect("audit log in temp dir");
    (Arc::new(log), path)
}

/// Reads, deletes and parses the audit file into one `Value` per line.
fn read_records(path: &PathBuf) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("audit file readable");
    let _ = std::fs::remove_file(path);
    text.lines()
        .map(|line| parse(line).unwrap_or_else(|e| panic!("unparseable audit line: {e}: {line}")))
        .collect()
}

fn str_field<'a>(record: &'a Value, key: &str) -> &'a str {
    record.get(key).and_then(Value::as_str).unwrap_or_else(|| panic!("no string `{key}`"))
}

#[test]
fn full_and_cache_hit_verdicts_are_audited() {
    let system = trained_system();
    let n_aux = system.n_auxiliaries();
    let waves = test_waves(2);
    let (audit, path) = audit_log("full");

    let policy = DegradePolicy::untrained(n_aux);
    let config =
        EngineConfig { deadline_ms: 60_000, audit: Some(audit), ..EngineConfig::default() };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let verdicts: Vec<_> =
        waves.iter().map(|w| engine.detect_blocking(Arc::clone(w)).expect("accepted")).collect();
    let replay = engine.detect_blocking(Arc::clone(&waves[0])).expect("accepted");
    assert!(replay.from_cache, "replay must hit the cache");
    engine.shutdown();

    let records = read_records(&path);
    assert_eq!(records.len(), waves.len() + 1, "one record per verdict");
    let cached: Vec<bool> =
        records.iter().map(|r| r.get("cache").unwrap().as_bool().unwrap()).collect();
    assert_eq!(cached.iter().filter(|&&c| c).count(), 1, "exactly one cache-hit record");

    for (record, verdict) in records.iter().zip(verdicts.iter().chain([&replay])) {
        assert_eq!(str_field(record, "event"), "verdict");
        assert_eq!(str_field(record, "kind"), "full");
        assert!(record.get("tier").unwrap().is_null(), "full verdicts have no fallback tier");
        assert_eq!(
            record.get("adversarial").unwrap().as_bool(),
            verdict.is_adversarial,
            "the record must reconstruct the decision"
        );
        assert_eq!(record.get("target").unwrap().as_str(), verdict.target_transcription.as_deref());
        // Per-auxiliary transcript and similarity score, in order.
        let aux = record.get("aux").unwrap().as_arr().unwrap();
        assert_eq!(aux.len(), n_aux);
        for (j, entry) in aux.iter().enumerate() {
            assert_eq!(entry.get("i").unwrap().as_f64(), Some(j as f64));
            assert!(entry.get("text").unwrap().as_str().is_some());
            assert_eq!(entry.get("score").unwrap().as_f64(), verdict.scores[j]);
        }
        // Per-stage micro-timings add up to a plausible total.
        let timing = record.get("timing").unwrap();
        let total = timing.get("total_us").unwrap().as_f64().unwrap();
        assert!(total >= 0.0);
        assert!(timing.get("queue_us").unwrap().as_f64().is_some());
        assert!(timing.get("transcribe_us").unwrap().as_arr().is_some());
    }

    // The computed (non-cache) records carry their batch and stage times.
    let computed = &records[0];
    assert!(computed.get("batch").unwrap().as_f64().is_some());
    let transcribe =
        computed.get("timing").unwrap().get("transcribe_us").unwrap().as_arr().unwrap();
    assert_eq!(transcribe.len(), n_aux + 1, "one transcribe time per recogniser");
}

#[test]
fn degraded_verdicts_record_their_tier() {
    let system = trained_system();
    let n_aux = system.n_auxiliaries();
    let waves = test_waves(2);
    let (audit, path) = audit_log("degraded");

    let (benign, aes) = training_scores(n_aux);
    let policy = DegradePolicy::trained(n_aux, &benign, &aes, ClassifierKind::Knn, 0.05);
    let config = EngineConfig {
        aux_deadline_ms: vec![Some(0)], // auxiliary 0 never dispatched
        deadline_ms: 60_000,
        audit: Some(audit),
        ..EngineConfig::default()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);
    for wave in &waves {
        let verdict = engine.detect_blocking(Arc::clone(wave)).expect("accepted");
        assert!(matches!(verdict.kind, VerdictKind::Degraded(_)));
    }
    engine.shutdown();

    let records = read_records(&path);
    assert_eq!(records.len(), waves.len());
    for record in &records {
        assert_eq!(str_field(record, "kind"), "degraded");
        assert_eq!(str_field(record, "tier"), "subset_classifier");
        assert!(record.get("adversarial").unwrap().as_bool().is_some());
        let aux = record.get("aux").unwrap().as_arr().unwrap();
        assert!(aux[0].get("text").unwrap().is_null(), "disabled auxiliary has no transcript");
        assert!(aux[0].get("score").unwrap().is_null());
        assert!(aux[1].get("score").unwrap().as_f64().is_some());
    }
}

#[test]
fn shed_requests_are_audited() {
    let system = trained_system();
    let waves = test_waves(1);
    let (audit, path) = audit_log("shed");

    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig {
        queue_cap: 1, // tiny ingress: a tight submit loop must overflow it
        deadline_ms: 60_000,
        audit: Some(audit),
        ..EngineConfig::default()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for _ in 0..64 {
        match engine.submit(Arc::clone(&waves[0])) {
            Ok(pending) => accepted.push(pending),
            Err(SubmitError::Overloaded) => shed += 1,
            Err(SubmitError::Closed) => panic!("engine closed during the test"),
        }
    }
    assert!(shed > 0, "64 tight-loop submits must overflow a one-slot queue");
    let accepted_count = accepted.len();
    for pending in accepted {
        pending.wait();
    }
    let stats = engine.stats();
    engine.shutdown();

    let records = read_records(&path);
    let shed_records = records.iter().filter(|r| str_field(r, "event") == "shed").count() as u64;
    let verdict_records = records.iter().filter(|r| str_field(r, "event") == "verdict").count();
    assert_eq!(shed_records, shed, "every shed request leaves a record");
    assert_eq!(verdict_records, accepted_count, "every accepted request leaves a record");
    assert_eq!(stats.shed, shed, "stats and audit must agree on shedding");
}

#[test]
fn exposition_agrees_with_snapshot() {
    let system = trained_system();
    let waves = test_waves(2);

    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig { deadline_ms: 60_000, ..EngineConfig::default() };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);
    for wave in &waves {
        engine.detect_blocking(Arc::clone(wave)).expect("accepted");
    }
    engine.detect_blocking(Arc::clone(&waves[0])).expect("accepted");

    let exposition = engine.metrics_text();
    let stats = engine.stats();
    engine.shutdown();

    // Counters in the exposition are the very numbers in the snapshot.
    for (name, value) in [
        ("serve_submitted_total", stats.submitted),
        ("serve_completed_total", stats.completed),
        ("serve_shed_total", stats.shed),
        ("serve_degraded_total", stats.degraded),
        ("serve_cache_lookups_total", stats.cache_lookups),
        ("serve_cache_hits_total", stats.cache_hits),
        ("serve_cache_poison_recovered_total", stats.cache_poison_recovered),
    ] {
        let line = format!("{name} {value}");
        assert!(
            exposition.lines().any(|l| l == line),
            "exposition must contain `{line}`:\n{exposition}"
        );
    }
    assert_eq!(stats.cache_poison_recovered, 0, "healthy run never recovers a poisoned lock");
    // The latency histogram counted every completed request.
    let line = format!("serve_latency_micros_count {}", stats.completed);
    assert!(exposition.lines().any(|l| l == line), "histogram count:\n{exposition}");
    assert!(exposition.contains("# TYPE serve_latency_micros histogram"));
}
