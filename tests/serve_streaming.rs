//! Streaming-path tests for the serving engine and the shard router:
//! chunked ingress must be byte-identical to the one-shot API when
//! early exit is off (over arbitrary chunk boundaries, down to
//! one-sample chunks), early exit must fire `Adversarial` before
//! end-of-stream and never `Benign`, `wait_timeout` must hand the
//! ticket back intact, and the router must preserve cache affinity,
//! count steals, and answer streams.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use proptest::collection::vec;
use proptest::prelude::*;

use mvp_ears_suite::asr::AsrProfile;
use mvp_ears_suite::audio::Waveform;
use mvp_ears_suite::corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears_suite::ears::{DetectionSystem, EarlyExit};
use mvp_ears_suite::ml::ClassifierKind;
use mvp_ears_suite::serve::{
    waveform_key, DegradePolicy, DetectionEngine, EngineConfig, RouterConfig, ShardRouter,
    VerdictKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn training_scores(n_aux: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let benign: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..n_aux).map(|j| 0.82 + 0.015 * ((i + j) % 10) as f64).collect())
        .collect();
    let aes: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..n_aux).map(|j| 0.03 + 0.015 * ((i * 3 + j) % 10) as f64).collect())
        .collect();
    (benign, aes)
}

fn trained_system() -> Arc<DetectionSystem> {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .build();
    let (benign, aes) = training_scores(system.n_auxiliaries());
    system.train_on_scores(&benign, &aes, ClassifierKind::Knn);
    Arc::new(system)
}

/// A system whose classifier calls *everything* adversarial: benign
/// training scores sit at an unreachable 5.0, so any real similarity
/// vector is nearer the adversarial cluster.
fn always_adversarial_system() -> Arc<DetectionSystem> {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .build();
    let n_aux = system.n_auxiliaries();
    let benign: Vec<Vec<f64>> = (0..8).map(|_| vec![5.0; n_aux]).collect();
    let aes: Vec<Vec<f64>> = (0..8).map(|i| vec![0.1 + 0.05 * (i % 8) as f64; n_aux]).collect();
    system.train_on_scores(&benign, &aes, ClassifierKind::Knn);
    Arc::new(system)
}

fn no_deadline_config() -> EngineConfig {
    EngineConfig { deadline_ms: 60_000, ..EngineConfig::default() }
}

/// Pushes `wave` through a fresh stream in the given chunk sizes
/// (cycled until the samples run out) and returns the final verdict.
fn stream_in_chunks(
    engine: &DetectionEngine,
    wave: &Waveform,
    sizes: &[usize],
) -> mvp_ears_suite::serve::Verdict {
    let mut handle = engine.submit_stream().expect("stream accepted");
    let samples = wave.samples();
    let mut offset = 0usize;
    let mut k = 0usize;
    while offset < samples.len() {
        let take = sizes[k % sizes.len()].max(1).min(samples.len() - offset);
        handle.push(&samples[offset..offset + take]).expect("chunk accepted");
        offset += take;
        k += 1;
    }
    handle.finish().expect("stream answered")
}

/// Shared fixture for the parity tests: one engine (early exit off),
/// one noise waveform, and the one-shot detection it must reproduce.
struct ParityFixture {
    system: Arc<DetectionSystem>,
    engine: DetectionEngine,
    wave: Waveform,
}

fn parity_fixture() -> &'static ParityFixture {
    static FIXTURE: OnceLock<ParityFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let system = trained_system();
        let policy = DegradePolicy::untrained(system.n_auxiliaries());
        let engine = DetectionEngine::start(Arc::clone(&system), policy, no_deadline_config());
        let mut rng = StdRng::seed_from_u64(20_260_807);
        let samples: Vec<f32> = (0..4_000).map(|_| rng.gen_range(-0.4f32..0.4)).collect();
        let wave = Waveform::from_samples(samples, 16_000);
        ParityFixture { system, engine, wave }
    })
}

#[test]
fn chunked_stream_matches_one_shot_detection() {
    let system = trained_system();
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let engine = DetectionEngine::start(Arc::clone(&system), policy, no_deadline_config());

    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 2, seed: 913, ..CorpusConfig::default() }).build();
    for utterance in corpus.utterances() {
        let expected = system.detect(&utterance.wave);
        let verdict = stream_in_chunks(&engine, &utterance.wave, &[1_600]);
        assert_eq!(verdict.kind, VerdictKind::Full);
        assert!(!verdict.early_exit);
        assert!(!verdict.from_cache, "streams bypass the cache");
        assert_eq!(verdict.is_adversarial, Some(expected.is_adversarial));
        let scores: Vec<f64> = verdict.scores.iter().map(|s| s.expect("full vector")).collect();
        assert_eq!(scores, expected.scores, "chunked scores must be byte-identical");
        assert_eq!(
            verdict.target_transcription.as_deref(),
            Some(expected.target_transcription.as_str())
        );
    }

    let stats = engine.stats();
    assert_eq!(stats.streams_opened, 2);
    assert_eq!(stats.streams_completed, 2);
    assert_eq!(stats.stream_early_exits, 0);
    assert_eq!(stats.cache_hits, 0);
    engine.shutdown();
}

#[test]
fn one_sample_chunks_match_one_shot_detection() {
    // The degenerate boundary: every chunk carries a single sample.
    let fixture = parity_fixture();
    let expected = fixture.system.detect(&fixture.wave);
    let verdict = stream_in_chunks(&fixture.engine, &fixture.wave, &[1]);
    assert_eq!(verdict.is_adversarial, Some(expected.is_adversarial));
    let scores: Vec<f64> = verdict.scores.iter().map(|s| s.expect("full vector")).collect();
    assert_eq!(scores, expected.scores);
    assert_eq!(
        verdict.target_transcription.as_deref(),
        Some(expected.target_transcription.as_str())
    );
}

proptest! {
    #[test]
    fn random_chunk_boundaries_match_one_shot(sizes in vec(1usize..3_000, 1..6)) {
        let fixture = parity_fixture();
        let expected = fixture.system.detect(&fixture.wave);
        let verdict = stream_in_chunks(&fixture.engine, &fixture.wave, &sizes);
        prop_assert_eq!(verdict.kind, VerdictKind::Full);
        prop_assert_eq!(verdict.is_adversarial, Some(expected.is_adversarial));
        let scores: Vec<f64> =
            verdict.scores.iter().map(|s| s.expect("full vector")).collect();
        prop_assert_eq!(scores, expected.scores.clone());
        prop_assert_eq!(
            verdict.target_transcription.as_deref(),
            Some(expected.target_transcription.as_str())
        );
    }
}

#[test]
fn early_exit_fires_adversarial_before_end_of_stream() {
    let system = always_adversarial_system();
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig {
        early_exit: Some(EarlyExit { threshold: 2.0, margin: 0.0, horizon: 1, min_frames: 1 }),
        ..no_deadline_config()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let mut rng = StdRng::seed_from_u64(7);
    let mut handle = engine.submit_stream().expect("stream accepted");
    let mut fired_after_chunks = None;
    for chunk_idx in 0..32 {
        let chunk: Vec<f32> = (0..1_600).map(|_| rng.gen_range(-0.4f32..0.4)).collect();
        handle.push(&chunk).expect("chunk accepted");
        // The collector evaluates asynchronously; give it a moment.
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.try_verdict().is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if handle.try_verdict().is_some() {
            fired_after_chunks = Some(chunk_idx + 1);
            break;
        }
    }
    let fired_after_chunks = fired_after_chunks.expect("early verdict must fire");
    assert!(fired_after_chunks < 32, "verdict should arrive before the stream ends");

    let verdict = handle.finish().expect("stream answered");
    assert!(verdict.early_exit, "verdict must be marked early");
    assert_eq!(verdict.is_adversarial, Some(true), "early exit only ever fires Adversarial");
    assert_eq!(verdict.kind, VerdictKind::Full);

    assert_eq!(engine.stats().stream_early_exits, 1);
    // finish() returned the cached early verdict without waiting for the
    // recognisers to flush; completion lands asynchronously.
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.stats().streams_completed < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(engine.stats().streams_completed, 1);
    engine.shutdown();
}

#[test]
fn early_exit_never_fires_benign_before_end_of_stream() {
    // A benign utterance under an armed early-exit rule: the verdict
    // must wait for end-of-stream and carry early_exit = false.
    let system = trained_system();
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig { early_exit: Some(EarlyExit::default()), ..no_deadline_config() };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 1, seed: 913, ..CorpusConfig::default() }).build();
    let wave = &corpus.utterances()[0].wave;
    let expected = system.detect(wave);
    assert!(!expected.is_adversarial, "fixture must be benign for this test");

    let mut handle = engine.submit_stream().expect("stream accepted");
    for chunk in wave.samples().chunks(1_600) {
        handle.push(chunk).expect("chunk accepted");
    }
    // No amount of waiting may produce a pre-finish Benign verdict.
    std::thread::sleep(Duration::from_millis(150));
    assert!(handle.try_verdict().is_none(), "Benign must wait for end-of-stream");
    let verdict = handle.finish().expect("stream answered");
    assert!(!verdict.early_exit);
    assert_eq!(verdict.is_adversarial, Some(false));
    assert_eq!(engine.stats().stream_early_exits, 0);
    engine.shutdown();
}

#[test]
fn wait_timeout_returns_the_ticket_then_the_verdict() {
    let system = trained_system();
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig {
        // A lone request sits in the batcher for the full delay window,
        // so a short timeout reliably expires first.
        max_batch: 16,
        max_delay_ms: 1_000,
        ..no_deadline_config()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 1, seed: 913, ..CorpusConfig::default() }).build();
    let wave = Arc::new(corpus.utterances()[0].wave.clone());

    let pending = engine.submit(Arc::clone(&wave)).expect("queue has room");
    let pending = pending
        .wait_timeout(Duration::from_millis(50))
        .expect_err("verdict cannot be ready inside the batcher delay window");
    // The returned ticket is still live: a blocking wait completes.
    let verdict = pending.wait();
    assert_eq!(verdict.kind, VerdictKind::Full);
    engine.shutdown();
}

#[test]
fn router_preserves_cache_affinity_and_parity() {
    let system = trained_system();
    let n_aux = system.n_auxiliaries();
    let config = RouterConfig {
        n_shards: 2,
        steal_depth: 1_000_000, // never steal: pure content-hash routing
        engine: no_deadline_config(),
    };
    let router =
        ShardRouter::start(Arc::clone(&system), config, |_| DegradePolicy::untrained(n_aux));

    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 3, seed: 913, ..CorpusConfig::default() }).build();
    let waves: Vec<Arc<Waveform>> =
        corpus.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();

    // First pass: full verdicts, parity with the one-shot API.
    for wave in &waves {
        let expected = system.detect(wave);
        let verdict = router.detect_blocking(Arc::clone(wave)).expect("accepted");
        assert!(!verdict.from_cache);
        assert_eq!(verdict.is_adversarial, Some(expected.is_adversarial));
        let scores: Vec<f64> = verdict.scores.iter().map(|s| s.expect("full vector")).collect();
        assert_eq!(scores, expected.scores);
    }
    // Second pass: the same content hashes to the same shard, whose
    // cache already holds it.
    for wave in &waves {
        let verdict = router.detect_blocking(Arc::clone(wave)).expect("accepted");
        assert!(verdict.from_cache, "replay must hit its home shard's cache");
    }

    assert_eq!(router.steal_counts(), vec![0, 0], "no steals at infinite steal depth");
    let merged = router.stats();
    assert_eq!(merged.cache_hits, waves.len() as u64);
    assert_eq!(merged.completed, 2 * waves.len() as u64);
    assert_eq!(router.shard_stats().len(), 2);
    router.shutdown();
}

#[test]
fn router_steals_away_from_the_home_shard_at_depth_zero() {
    let system = trained_system();
    let n_aux = system.n_auxiliaries();
    let config = RouterConfig { n_shards: 2, steal_depth: 0, engine: no_deadline_config() };
    let router =
        ShardRouter::start(Arc::clone(&system), config, |_| DegradePolicy::untrained(n_aux));

    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 4, seed: 913, ..CorpusConfig::default() }).build();
    let waves: Vec<Arc<Waveform>> =
        corpus.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();

    // Sequential submits keep both queues empty, so ties go to shard 0:
    // every wave homed on shard 1 must be stolen to shard 0.
    let homed_on_one = waves.iter().filter(|w| waveform_key(w) % 2 == 1).count() as u64;
    for wave in &waves {
        router.detect_blocking(Arc::clone(wave)).expect("accepted");
    }
    let steals = router.steal_counts();
    assert_eq!(steals[0], 0, "shard 0 work is never stolen at equal depth");
    assert_eq!(steals[1], homed_on_one, "every shard-1 wave steals to shard 0");
    router.shutdown();
}

#[test]
fn router_streams_round_robin_and_complete() {
    let system = trained_system();
    let n_aux = system.n_auxiliaries();
    let config = RouterConfig { n_shards: 2, steal_depth: 8, engine: no_deadline_config() };
    let router =
        ShardRouter::start(Arc::clone(&system), config, |_| DegradePolicy::untrained(n_aux));

    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..2 {
        let mut handle = router.submit_stream().expect("stream accepted");
        for _ in 0..3 {
            let chunk: Vec<f32> = (0..1_600).map(|_| rng.gen_range(-0.3f32..0.3)).collect();
            handle.push(&chunk).expect("chunk accepted");
        }
        let verdict = handle.finish().expect("stream answered");
        assert_eq!(verdict.kind, VerdictKind::Full);
    }

    let merged = router.stats();
    assert_eq!(merged.streams_opened, 2);
    assert_eq!(merged.streams_completed, 2);
    // Round-robin placement: one stream per shard.
    let per_shard: Vec<u64> = router.shard_stats().iter().map(|s| s.streams_opened).collect();
    assert_eq!(per_shard, vec![1, 1]);
    router.shutdown();
}
