//! End-to-end tests for the serving engine: verdict parity with the
//! one-shot detection API under concurrent load, cache-hit behaviour,
//! graceful degradation when an auxiliary is deadline-disabled, and
//! warm starts from a persisted detection-system snapshot.

use std::sync::Arc;

use mvp_ears_suite::asr::{Asr, AsrProfile, AsrScratch};
use mvp_ears_suite::audio::Waveform;
use mvp_ears_suite::corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears_suite::ears::DetectionSystem;
use mvp_ears_suite::ml::ClassifierKind;
use mvp_ears_suite::serve::{
    DegradePolicy, DetectionEngine, EngineConfig, FallbackTier, VerdictKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Well-separated synthetic training scores matching the paper's score
/// geometry (benign similarities high, adversarial low), so training is
/// deterministic and needs no attack run.
fn training_scores(n_aux: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let benign: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..n_aux).map(|j| 0.82 + 0.015 * ((i + j) % 10) as f64).collect())
        .collect();
    let aes: Vec<Vec<f64>> = (0..24)
        .map(|i| (0..n_aux).map(|j| 0.03 + 0.015 * ((i * 3 + j) % 10) as f64).collect())
        .collect();
    (benign, aes)
}

fn trained_system() -> Arc<DetectionSystem> {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .build();
    let (benign, aes) = training_scores(system.n_auxiliaries());
    system.train_on_scores(&benign, &aes, ClassifierKind::Knn);
    Arc::new(system)
}

/// Mixed test traffic: N clean utterances plus N noise bursts (which no
/// ASR agrees on, standing in for adversarial audio).
fn test_waves(n: usize) -> Vec<Arc<Waveform>> {
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: n, seed: 913, ..CorpusConfig::default() }).build();
    let mut waves: Vec<Arc<Waveform>> =
        corpus.utterances().iter().map(|u| Arc::new(u.wave.clone())).collect();
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..n {
        let samples: Vec<f32> = (0..6_000).map(|_| rng.gen_range(-0.4f32..0.4)).collect();
        waves.push(Arc::new(Waveform::from_samples(samples, 16_000)));
    }
    waves
}

#[test]
fn engine_verdicts_match_one_shot_detection() {
    let system = trained_system();
    let waves = test_waves(3);

    let expected: Vec<_> = waves.iter().map(|w| system.detect(w)).collect();

    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig {
        max_batch: 4,
        max_delay_ms: 2,
        deadline_ms: 60_000, // no deadline may fire in this test
        ..EngineConfig::default()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    // Submit everything up front so requests overlap in flight.
    let pending: Vec<_> =
        waves.iter().map(|w| engine.submit(Arc::clone(w)).expect("queue has room")).collect();
    for (pending, expected) in pending.into_iter().zip(&expected) {
        let verdict = pending.wait();
        assert_eq!(verdict.kind, VerdictKind::Full);
        assert!(!verdict.from_cache);
        assert_eq!(verdict.is_adversarial, Some(expected.is_adversarial));
        let scores: Vec<f64> = verdict.scores.iter().map(|s| s.expect("full vector")).collect();
        assert_eq!(scores, expected.scores);
        assert_eq!(
            verdict.target_transcription.as_deref(),
            Some(expected.target_transcription.as_str())
        );
    }

    // An exact replay is answered from the cache with the same verdict.
    let replay = engine.submit(Arc::clone(&waves[0])).expect("queue has room").wait();
    assert!(replay.from_cache);
    assert_eq!(replay.kind, VerdictKind::Full);
    assert_eq!(replay.is_adversarial, Some(expected[0].is_adversarial));

    let stats = engine.stats();
    assert_eq!(stats.submitted, waves.len() as u64 + 1);
    assert_eq!(stats.completed, waves.len() as u64 + 1);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.deadline_failures, 0);
    assert_eq!(stats.degraded, 0);
    assert!(stats.cache_hits >= 1, "replay must hit the cache");
    engine.shutdown();
}

#[test]
fn degraded_mode_still_answers_every_request() {
    let system = trained_system();
    let n_aux = system.n_auxiliaries();
    let waves = test_waves(3);

    let (benign, aes) = training_scores(n_aux);
    let policy = DegradePolicy::trained(n_aux, &benign, &aes, ClassifierKind::Knn, 0.05);
    let config = EngineConfig {
        // Auxiliary 0 (DS1) never dispatched: deterministic degraded mode.
        aux_deadline_ms: vec![Some(0)],
        deadline_ms: 60_000,
        ..EngineConfig::default()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let pending: Vec<_> =
        waves.iter().map(|w| engine.submit(Arc::clone(w)).expect("queue has room")).collect();
    for pending in pending {
        let verdict = pending.wait();
        // Every request is answered, by the subset classifier for the
        // surviving auxiliary.
        assert_eq!(verdict.kind, VerdictKind::Degraded(FallbackTier::SubsetClassifier));
        assert!(verdict.is_adversarial.is_some());
        assert!(verdict.scores[0].is_none(), "disabled auxiliary must not score");
        assert!(verdict.scores[1].is_some());
    }

    let stats = engine.stats();
    assert_eq!(stats.completed, waves.len() as u64);
    assert_eq!(stats.degraded, waves.len() as u64);
    assert_eq!(stats.deadline_failures, 0);
    // Partial transcription vectors are never cached.
    assert_eq!(stats.cache_hits, 0);
    engine.shutdown();
}

#[test]
fn warm_start_round_trips_through_the_model_dir() {
    let dir = std::env::temp_dir().join(format!("mvp-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let waves = test_waves(2);
    let config = EngineConfig {
        deadline_ms: 60_000,
        model_dir: Some(dir.clone()),
        ..EngineConfig::default()
    };

    // Cold start: no snapshot on disk yet, so the closure trains and the
    // engine persists the system.
    let n_aux = {
        let system = trained_system();
        let n_aux = system.n_auxiliaries();
        let policy = DegradePolicy::untrained(n_aux);
        let (engine, warm) = DetectionEngine::start_or_warm(policy, config.clone(), || {
            Arc::try_unwrap(trained_system()).expect("sole owner")
        })
        .expect("cold start");
        assert!(!warm, "first start must be cold");
        let verdict = engine.detect_blocking(Arc::clone(&waves[0])).expect("accepted");
        assert_eq!(verdict.kind, VerdictKind::Full);
        engine.shutdown();
        n_aux
    };
    assert!(dir.join(DetectionEngine::SNAPSHOT_FILE).is_file(), "snapshot persisted");

    // Warm start: the snapshot is loaded, the cold closure must not run,
    // and verdicts match the one-shot API on the restored system.
    let expected: Vec<_> = {
        let system = trained_system();
        waves.iter().map(|w| system.detect(w)).collect()
    };
    let policy = DegradePolicy::untrained(n_aux);
    let (engine, warm) = DetectionEngine::start_or_warm(policy, config.clone(), || {
        panic!("warm start must not train")
    })
    .expect("warm start");
    assert!(warm, "second start must be warm");
    for (wave, expected) in waves.iter().zip(&expected) {
        let verdict = engine.detect_blocking(Arc::clone(wave)).expect("accepted");
        assert_eq!(verdict.kind, VerdictKind::Full);
        assert_eq!(verdict.is_adversarial, Some(expected.is_adversarial));
        let scores: Vec<f64> = verdict.scores.iter().map(|s| s.expect("full vector")).collect();
        assert_eq!(scores, expected.scores, "warm verdicts must be bit-identical");
    }
    engine.shutdown();

    // A corrupted snapshot is refused with a typed error, not retrained.
    let path = dir.join(DetectionEngine::SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&path).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("snapshot writable");
    let policy = DegradePolicy::untrained(n_aux);
    let err = DetectionEngine::start_or_warm(policy, config, || {
        panic!("corrupt snapshot must not fall back to training")
    })
    .expect_err("corrupt snapshot must be refused");
    assert!(!err.is_not_found(), "corruption is not a cache miss: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_scratch_reuse_is_byte_identical_to_one_shot() {
    // The serve workers hold one scratch plan for their whole lifetime;
    // reusing it across batches must never leak state between requests.
    let asr = AsrProfile::Ds0.trained();
    let waves = test_waves(2);
    let refs: Vec<&Waveform> = waves.iter().map(Arc::as_ref).collect();

    let one_shot: Vec<String> = refs.iter().map(|w| asr.transcribe(w)).collect();

    let mut scratch = AsrScratch::default();
    let first = asr.transcribe_batch_with(&refs, &mut scratch);
    let second = asr.transcribe_batch_with(&refs, &mut scratch);
    assert_eq!(first, one_shot, "fresh scratch must match the allocating path");
    assert_eq!(second, one_shot, "reused scratch must match the allocating path");
}
