//! Every checked-in WAV fixture must parse. The `data/<scale>/ae_wavs/`
//! caches are committed so experiment binaries warm-start; a fixture
//! that the workspace's own parser rejects (as happened once, when an
//! encoding-lossy copy silently corrupted a whole cache tier) is worse
//! than a missing one because the failure surfaces deep inside an
//! experiment run instead of here.

use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use mvp_audio::wav::read_wav_with_limit;

/// Generous per-file cap: quick-scale AEs are a few seconds of 16 kHz
/// mono, so a million samples flags a corrupt header long before OOM.
const MAX_SAMPLES: usize = 1 << 20;

fn collect_wavs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_wavs(&path, out);
        } else if path.extension().is_some_and(|e| e == "wav") {
            out.push(path);
        }
    }
}

#[test]
fn every_checked_in_wav_fixture_parses() {
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("data");
    let mut wavs = Vec::new();
    collect_wavs(&data, &mut wavs);
    wavs.sort();
    assert!(
        !wavs.is_empty(),
        "no WAV fixtures found under {}; the cache tiers are gone",
        data.display()
    );
    for path in &wavs {
        let file = fs::File::open(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let wave = read_wav_with_limit(BufReader::new(file), MAX_SAMPLES)
            .unwrap_or_else(|e| panic!("{}: corrupt fixture: {e:?}", path.display()));
        assert!(!wave.is_empty(), "{}: fixture decodes to zero samples", path.display());
        assert!(wave.sample_rate() > 0, "{}: fixture declares a zero sample rate", path.display());
    }
}
